package relayer

import (
	"errors"
	"testing"
	"time"

	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/ibc"
	"repro/internal/lightclient/tendermint"
)

// TestChunkedClientUpdateThroughTransactions pins the §IV mechanism end to
// end: a real counterparty update (tens of kilobytes, ~100 signatures) is
// staged across size-limited host transactions whose precompile entries
// verify the commit signatures, and the final commit applies it to the
// Tendermint client inside the contract without any in-contract Ed25519.
func TestChunkedClientUpdateThroughTransactions(t *testing.T) {
	e := newBootEnvWithCP(t, 100)
	b := &Bootstrap{
		HostChain: e.chain, Contract: e.contract, CP: e.cp,
		ValidatorKeys: e.keys, GuestPort: "transfer", CPPort: "transfer",
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.contract.State(e.chain)
	if err != nil {
		t.Fatal(err)
	}
	client, err := st.Handler.Client(res.GuestClientID)
	if err != nil {
		t.Fatal(err)
	}
	before := client.LatestHeight()

	// Advance the counterparty several blocks and build the update.
	for i := 0; i < 5; i++ {
		e.clock.Advance(6 * time.Second)
		e.cp.ProduceBlock()
	}
	target := e.cp.Height()
	update, err := e.cp.UpdateAt(target)
	if err != nil {
		t.Fatal(err)
	}
	headerBytes := update.Marshal()
	if len(headerBytes) < 5*host.MaxTransactionSize {
		t.Fatalf("update only %d bytes; the scenario should not fit a few transactions", len(headerBytes))
	}

	relayerKey := e.keys[0].Public() // reuse a funded account
	builder := guest.NewTxBuilder(e.contract, relayerKey)
	headerHash := update.Header.Hash()
	var sigs []guest.SigBatch
	for _, cs := range update.Commit {
		payload := tendermint.VotePayload(headerHash, cs.Timestamp)
		sigs = append(sigs, guest.SigBatch{Pub: cs.PubKey, Payload: payload[:], Sig: cs.Signature})
	}
	txs := builder.UpdateClientTxs(res.GuestClientID, headerBytes, sigs)
	if len(txs) < 5 {
		t.Fatalf("update packed into %d txs; expected a long chunk sequence", len(txs))
	}

	var updated *guest.EventClientUpdated
	for _, tx := range txs {
		if tx.Size() > host.MaxTransactionSize {
			t.Fatalf("chunk tx of %d bytes exceeds the limit", tx.Size())
		}
		if err := e.chain.Submit(tx); err != nil {
			t.Fatal(err)
		}
		e.clock.Advance(host.SlotDuration)
		blk := e.chain.ProduceBlock()
		for _, r := range blk.Results {
			if r.Err != nil {
				t.Fatalf("tx %q failed: %v", r.Label, r.Err)
			}
			if r.Units > host.MaxComputeUnits {
				t.Fatalf("tx %q used %d CU", r.Label, r.Units)
			}
		}
		for _, ev := range blk.EventsOfKind("ClientUpdated") {
			e := ev.Payload.(guest.EventClientUpdated)
			updated = &e
		}
	}

	if client.LatestHeight() != ibc.Height(target) {
		t.Fatalf("client at %d, want %d (was %d)", client.LatestHeight(), target, before)
	}
	if updated == nil {
		t.Fatal("no ClientUpdated event")
	}
	if updated.Txs != len(txs) {
		t.Fatalf("event counted %d txs, submitted %d", updated.Txs, len(txs))
	}

	// A tampered commit signature must make the whole upload fail.
	for i := 0; i < 3; i++ {
		e.clock.Advance(6 * time.Second)
		e.cp.ProduceBlock()
	}
	target2 := e.cp.Height()
	update2, err := e.cp.UpdateAt(target2)
	if err != nil {
		t.Fatal(err)
	}
	headerHash2 := update2.Header.Hash()
	var sigs2 []guest.SigBatch
	for _, cs := range update2.Commit {
		payload := tendermint.VotePayload(headerHash2, cs.Timestamp)
		sigs2 = append(sigs2, guest.SigBatch{Pub: cs.PubKey, Payload: payload[:], Sig: cs.Signature})
	}
	sigs2[0].Sig[3] ^= 0xff // corrupt
	txs2 := builder.UpdateClientTxs(res.GuestClientID, update2.Marshal(), sigs2)
	sawFailure := false
	for _, tx := range txs2 {
		if err := e.chain.Submit(tx); err != nil {
			t.Fatal(err)
		}
		e.clock.Advance(host.SlotDuration)
		blk := e.chain.ProduceBlock()
		for _, r := range blk.Results {
			if r.Err != nil {
				sawFailure = true
			}
		}
	}
	if !sawFailure {
		t.Fatal("corrupted signature upload fully succeeded")
	}
	if client.LatestHeight() != ibc.Height(target) {
		t.Fatalf("client moved to %d on a corrupted update", client.LatestHeight())
	}
}

// TestDoubleDeliveryRejectedThroughContract drives the paper's headline
// double-delivery guard through the whole stack: the same packet delivered
// twice via chunked RecvPacket transactions — the second commit hits the
// sealed receipt and fails.
func TestDoubleDeliveryRejectedThroughContract(t *testing.T) {
	e := newBootEnv(t)
	b := &Bootstrap{
		HostChain: e.chain, Contract: e.contract, CP: e.cp,
		ValidatorKeys: e.keys, GuestPort: "transfer", CPPort: "transfer",
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.contract.State(e.chain)
	if err != nil {
		t.Fatal(err)
	}

	// The counterparty sends a packet and commits it.
	pkt, err := e.cp.SendPacket("transfer", res.CPChannel, []byte("deliver-once"), 0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(6 * time.Second)
	e.cp.ProduceBlock()
	cpHeight := e.cp.Height()

	// Teach the guest's client about the height.
	update, err := e.cp.UpdateAt(cpHeight)
	if err != nil {
		t.Fatal(err)
	}
	st.BeginDirect(e.clock.Now(), uint64(e.chain.Slot()))
	if err := st.Handler.UpdateClient(res.GuestClientID, update.Marshal()); err != nil {
		t.Fatal(err)
	}

	_, proof, err := e.cp.ProveMembershipAt(cpHeight, ibc.CommitmentPath(pkt.SourcePort, pkt.SourceChannel, pkt.Sequence))
	if err != nil {
		t.Fatal(err)
	}
	builder := guest.NewTxBuilder(e.contract, e.keys[0].Public())
	deliver := func() error {
		txs := builder.RecvPacketTxs(&guest.RecvPayload{
			Packet:      pkt,
			ProofHeight: ibc.Height(cpHeight),
			Proof:       proof,
		})
		var lastErr error
		for _, tx := range txs {
			if err := e.chain.Submit(tx); err != nil {
				return err
			}
			e.clock.Advance(host.SlotDuration)
			blk := e.chain.ProduceBlock()
			for _, r := range blk.Results {
				if r.Err != nil {
					lastErr = r.Err
				}
			}
		}
		return lastErr
	}

	if err := deliver(); err != nil {
		t.Fatalf("first delivery failed: %v", err)
	}
	// The receipt is sealed in the provable store (§III-A).
	receiptPath := ibc.ReceiptPath(pkt.DestPort, pkt.DestChannel, pkt.Sequence)
	if !st.Store.IsSealed(receiptPath) {
		t.Fatal("receipt not sealed after delivery")
	}
	// The second identical delivery must be rejected by the sealed trie.
	err = deliver()
	if err == nil {
		t.Fatal("double delivery succeeded")
	}
	if !errors.Is(err, ibc.ErrPacketAlreadyDelivered) {
		t.Fatalf("second delivery error = %v, want ErrPacketAlreadyDelivered", err)
	}
}
