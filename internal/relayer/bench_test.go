package relayer

import (
	"testing"

	"repro/internal/ibc"
)

// BenchmarkTraceKey covers the per-event trace-key construction: every
// packet event the relayer scans builds this key (often several times per
// packet lifecycle), so it sits on the telemetry hot path under load.
func BenchmarkTraceKey(b *testing.B) {
	p := &ibc.Packet{
		Sequence:      123_456,
		SourcePort:    "transfer",
		SourceChannel: "channel-0",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(traceKey(p)) == 0 {
			b.Fatal("empty key")
		}
	}
}
