package relayer

import (
	"math/rand"
	"time"

	"repro/internal/host"
)

// job is a paced sequence of host transactions with a completion callback.
type job struct {
	label string
	txs   []*host.Transaction
	// started is when the first transaction was submitted (the paper's
	// Fig. 4 measures first-tx to last-tx execution).
	started time.Time
	onDone  func(started, finished time.Time)
}

// pacer is one paced host-transaction submitter: a FIFO of jobs drained
// one transaction at a time with a TxGap-distributed gap between
// submissions, exactly like a real RPC submitter with confirmation
// pacing. Each relayer shard owns a pacer, so channels submit
// concurrently on the sim scheduler without perturbing each other's
// pacing streams; shard 0 shares the relayer's root pacer (and its RNG)
// with the client-update scheduler, which keeps the single-channel
// topology byte-identical to the pre-shard relayer.
type pacer struct {
	r   *Relayer
	rng *rand.Rand

	// queue is the FIFO of host tx jobs; busy marks the pump running.
	queue []*job
	busy  bool
}

// enqueue schedules a paced submission of txs; onDone fires one slot after
// the last submission (when the commit landed) with the first and last
// transaction landing times.
func (p *pacer) enqueue(label string, txs []*host.Transaction, onDone func(started, finished time.Time)) {
	p.queue = append(p.queue, &job{label: label, txs: txs, onDone: onDone})
	p.r.queueDelta(+1)
	if !p.busy {
		p.busy = true
		p.r.sched.After(0, p.pump)
	}
}

// pump submits the next transaction of the current job.
func (p *pacer) pump() {
	if len(p.queue) == 0 {
		p.busy = false
		return
	}
	r := p.r
	j := p.queue[0]
	if len(j.txs) == 0 {
		// Job finished submitting; fire completion after landing.
		p.queue = p.queue[1:]
		r.queueDelta(-1)
		done := j.onDone
		started := j.started
		slot := r.hostChain.Profile().SlotDuration
		r.sched.After(slot+slot/2, func() {
			finished := r.sched.Now()
			if !started.IsZero() {
				r.mJobLatency.Observe(finished.Sub(started).Seconds())
				r.observeHealthLatency(finished.Sub(started).Seconds())
			}
			if done != nil {
				done(started, finished)
			}
		})
		r.sched.After(0, p.pump)
		return
	}
	if j.started.IsZero() {
		// First transaction lands at the next slot boundary.
		j.started = r.sched.Now().Add(r.hostChain.Profile().SlotDuration / 2)
	}
	tx := j.txs[0]
	j.txs = j.txs[1:]
	r.TotalFees += tx.Fee()
	r.submitHost(tx, func(err error) {
		if err != nil {
			// Oversized or malformed transactions are a relayer bug (and a
			// dead-lettered submission surfaces here too); drop the job
			// rather than wedge the queue.
			p.queue = p.queue[1:]
			r.queueDelta(-1)
			r.sched.After(0, p.pump)
			return
		}
		r.sched.After(r.cfg.TxGap.Sample(p.rng), p.pump)
	})
}

// queueDelta tracks the aggregate job-queue depth across all pacers and
// mirrors it into the relayer.queue_depth gauge (with one pacer the
// series is identical to the old per-queue length samples).
func (r *Relayer) queueDelta(d int64) {
	r.queuedJobs += d
	r.mQueueDepth.Set(r.queuedJobs)
}
