package relayer

import (
	"fmt"

	"repro/internal/counterparty"
	"repro/internal/ibc"
	"repro/internal/lightclient/tendermint"
)

// PairBootstrap runs the operator-side setup between two Cosmos-style
// counterparty chains: a tendermint client on each side, the four-step
// ICS-03 connection handshake, and one ICS-04 channel. It is the
// symmetric sibling of Bootstrap (guest↔cosmos): both ends verify real
// membership proofs and validate the peer's view of themselves through
// ibc.SelfInfo, and both ends' headers advance through the same lazy
// commit-signature machinery the relayer later pays for.
//
// Like Bootstrap it runs directly — a one-off operator action outside the
// paced packet path.
type PairBootstrap struct {
	A, B *counterparty.Chain

	PortA, PortB ibc.PortID
	Ordering     ibc.Ordering
	Version      string

	// ClientBOnA / ClientAOnB override the default client identifiers
	// ("tm-<peer chain id>"); a chain carrying several mesh links needs a
	// distinct client per peer.
	ClientBOnA ibc.ClientID // tendermint client of B living on A
	ClientAOnB ibc.ClientID // tendermint client of A living on B
}

// PairResult reports the identifiers PairBootstrap created.
type PairResult struct {
	ClientBOnA ibc.ClientID
	ClientAOnB ibc.ClientID
	ConnA      ibc.ConnectionID
	ConnB      ibc.ConnectionID
	ChanA      ibc.ChannelID
	ChanB      ibc.ChannelID
}

// Run executes the bootstrap.
func (b *PairBootstrap) Run() (*PairResult, error) {
	if b.Ordering == 0 {
		b.Ordering = ibc.Unordered
	}
	if b.Version == "" {
		b.Version = "ics20-1"
	}
	res := &PairResult{ClientBOnA: b.ClientBOnA, ClientAOnB: b.ClientAOnB}
	if res.ClientBOnA == "" {
		res.ClientBOnA = ibc.ClientID("tm-" + b.B.ChainID())
	}
	if res.ClientAOnB == "" {
		res.ClientAOnB = ibc.ClientID("tm-" + b.A.ChainID())
	}

	// --- Clients ---
	hdrB, valsB := b.B.GenesisUpdate()
	tmB, err := tendermint.NewClient(b.B.ChainID(), hdrB, valsB)
	if err != nil {
		return nil, fmt.Errorf("pairboot: client of %s: %w", b.B.ChainID(), err)
	}
	if err := b.A.Handler().CreateClient(res.ClientBOnA, tmB); err != nil {
		return nil, err
	}
	hdrA, valsA := b.A.GenesisUpdate()
	tmA, err := tendermint.NewClient(b.A.ChainID(), hdrA, valsA)
	if err != nil {
		return nil, fmt.Errorf("pairboot: client of %s: %w", b.A.ChainID(), err)
	}
	if err := b.B.Handler().CreateClient(res.ClientAOnB, tmA); err != nil {
		return nil, err
	}

	// syncA commits A's state into a block and teaches it to B's client of
	// A (syncB mirrors it), so the next proof verifies on the other side.
	syncA := func() (uint64, error) {
		h := b.A.ProduceBlock()
		upd, err := b.A.UpdateAt(h.Height)
		if err != nil {
			return 0, err
		}
		return h.Height, b.B.Handler().UpdateClient(res.ClientAOnB, upd.Marshal())
	}
	syncB := func() (uint64, error) {
		h := b.B.ProduceBlock()
		upd, err := b.B.UpdateAt(h.Height)
		if err != nil {
			return 0, err
		}
		return h.Height, b.A.Handler().UpdateClient(res.ClientBOnA, upd.Marshal())
	}

	// --- Connection handshake (ICS-03) ---
	connA, err := b.A.Handler().ConnOpenInit(res.ClientBOnA, res.ClientAOnB)
	if err != nil {
		return nil, fmt.Errorf("pairboot: ConnOpenInit: %w", err)
	}
	res.ConnA = connA

	hA, err := syncA()
	if err != nil {
		return nil, err
	}
	_, proofInit, err := b.A.ProveMembershipAt(hA, ibc.ConnectionPath(connA))
	if err != nil {
		return nil, err
	}
	connB, err := b.B.Handler().ConnOpenTry(
		res.ClientAOnB,
		ibc.Counterparty{ClientID: res.ClientBOnA, ConnectionID: connA},
		tmB.StateBytes(),
		proofInit,
		ibc.Height(hA),
	)
	if err != nil {
		return nil, fmt.Errorf("pairboot: ConnOpenTry: %w", err)
	}
	res.ConnB = connB

	hB, err := syncB()
	if err != nil {
		return nil, err
	}
	_, proofTry, err := b.B.ProveMembershipAt(hB, ibc.ConnectionPath(connB))
	if err != nil {
		return nil, err
	}
	if err := b.A.Handler().ConnOpenAck(connA, connB, tmA.StateBytes(), proofTry, ibc.Height(hB)); err != nil {
		return nil, fmt.Errorf("pairboot: ConnOpenAck: %w", err)
	}

	hA, err = syncA()
	if err != nil {
		return nil, err
	}
	_, proofAck, err := b.A.ProveMembershipAt(hA, ibc.ConnectionPath(connA))
	if err != nil {
		return nil, err
	}
	if err := b.B.Handler().ConnOpenConfirm(connB, proofAck, ibc.Height(hA)); err != nil {
		return nil, fmt.Errorf("pairboot: ConnOpenConfirm: %w", err)
	}

	// --- Channel handshake (ICS-04) ---
	chA, err := b.A.Handler().ChanOpenInit(b.PortA, connA, b.PortB, b.Ordering, b.Version)
	if err != nil {
		return nil, fmt.Errorf("pairboot: ChanOpenInit: %w", err)
	}
	res.ChanA = chA

	hA, err = syncA()
	if err != nil {
		return nil, err
	}
	_, proofChanInit, err := b.A.ProveMembershipAt(hA, ibc.ChannelPath(b.PortA, chA))
	if err != nil {
		return nil, err
	}
	chB, err := b.B.Handler().ChanOpenTry(
		b.PortB,
		connB,
		ibc.ChannelCounterparty{PortID: b.PortA, ChannelID: chA},
		b.Ordering,
		b.Version,
		proofChanInit,
		ibc.Height(hA),
	)
	if err != nil {
		return nil, fmt.Errorf("pairboot: ChanOpenTry: %w", err)
	}
	res.ChanB = chB

	hB, err = syncB()
	if err != nil {
		return nil, err
	}
	_, proofChanTry, err := b.B.ProveMembershipAt(hB, ibc.ChannelPath(b.PortB, chB))
	if err != nil {
		return nil, err
	}
	if err := b.A.Handler().ChanOpenAck(b.PortA, chA, chB, proofChanTry, ibc.Height(hB)); err != nil {
		return nil, fmt.Errorf("pairboot: ChanOpenAck: %w", err)
	}

	hA, err = syncA()
	if err != nil {
		return nil, err
	}
	_, proofChanAck, err := b.A.ProveMembershipAt(hA, ibc.ChannelPath(b.PortA, chA))
	if err != nil {
		return nil, err
	}
	if err := b.B.Handler().ChanOpenConfirm(b.PortB, chB, proofChanAck, ibc.Height(hA)); err != nil {
		return nil, fmt.Errorf("pairboot: ChanOpenConfirm: %w", err)
	}
	return res, nil
}
