package relayer

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/ibc"
	"repro/internal/sim"
)

// mintFinalisedBlock writes a value and mints a finalised guest block via
// the direct (operator) path.
func mintFinalisedBlock(t *testing.T, e *bootEnv, st *guest.State, tag string) *guest.BlockEntry {
	t.Helper()
	e.clock.Advance(host.SlotDuration)
	e.chain.ProduceBlock()
	st.BeginDirect(e.clock.Now(), uint64(e.chain.Slot()))
	if err := st.Store.Set("pruned/"+tag, []byte(tag)); err != nil {
		t.Fatal(err)
	}
	entry, err := st.DirectGenerateBlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DirectFinalise(entry, e.keys); err != nil {
		t.Fatal(err)
	}
	return entry
}

func TestProveGuestMembershipRecoversFromPrunedSnapshot(t *testing.T) {
	e := newBootEnv(t)
	b := &Bootstrap{
		HostChain: e.chain, Contract: e.contract, CP: e.cp,
		ValidatorKeys: e.keys, GuestPort: "transfer", CPPort: "transfer",
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GuestClientID = res.GuestClientID
	cfg.GuestOnCPClientID = res.GuestOnCPClientID
	cfg.GuestPort = "transfer"
	cfg.GuestChannel = res.GuestChannel
	cfg.CPPort = "transfer"
	cfg.CPChannel = res.CPChannel
	r := New(cfg, e.chain, e.contract, e.cp, sim.NewScheduler(e.clock.Now()))

	st, err := e.contract.State(e.chain)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the retention window so a few blocks prune the target height.
	st.Params.SnapshotRetention = 3

	target := mintFinalisedBlock(t, e, st, "target")
	height := target.Block.Height
	path := "pruned/target"
	for i := 0; i < 5; i++ {
		mintFinalisedBlock(t, e, st, fmt.Sprintf("filler%d", i))
	}

	// The original height is gone from retention...
	if _, _, err := st.ProveMembershipAt(height, path); !errors.Is(err, guest.ErrSnapshotPruned) {
		t.Fatalf("ProveMembershipAt = %v, want ErrSnapshotPruned", err)
	}
	// ...but the relayer falls forward to the newest finalised root.
	proof, provedAt, err := r.proveGuestMembership(st, height, path)
	if err != nil {
		t.Fatalf("proveGuestMembership did not recover: %v", err)
	}
	latest := st.LatestFinalised()
	if provedAt != latest.Block.Height {
		t.Fatalf("provedAt = %d, want latest finalised %d", provedAt, latest.Block.Height)
	}
	value, err := st.Store.Get(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(value, []byte("target")) {
		t.Fatalf("value = %q", value)
	}
	if err := ibc.VerifyStoredMembership(latest.Block.StateRoot, path, value, proof); err != nil {
		t.Fatalf("recovered proof does not verify: %v", err)
	}
	// The fall-forward also advanced the counterparty's guest client, so
	// the proof is submittable at provedAt right away.
	client, err := e.cp.Handler().Client(res.GuestOnCPClientID)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(client.LatestHeight()) < provedAt {
		t.Fatalf("cp guest client at %d, want >= %d", client.LatestHeight(), provedAt)
	}
	// A genuinely unknown height still fails.
	if _, _, err := r.proveGuestMembership(st, 10_000, path); err == nil {
		t.Fatal("bogus height unexpectedly proved")
	}
}
