package relayer

import (
	"math/rand"
	"time"

	"repro/internal/counterparty"
	"repro/internal/ibc"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// PairSideConfig describes one end of a cosmos↔cosmos mesh link.
type PairSideConfig struct {
	Chain *counterparty.Chain
	// Node is this chain's RPC front-end on the simulated network.
	Node netsim.NodeID
	// ClientOfPeer is the tendermint client of the peer chain living on
	// this chain (from PairBootstrap).
	ClientOfPeer ibc.ClientID
	// Port/Channel are this side's end of the link's channel.
	Port    ibc.PortID
	Channel ibc.ChannelID
}

// PairConfig parameterises a PairRelayer.
type PairConfig struct {
	// LinkID is the canonical link identifier ("a-b").
	LinkID string
	// Seed drives the relayer's latency draws; mesh wiring derives it per
	// link via sim.DeriveSeed(seed, "link/<id>").
	Seed int64
	// Latency is the per-operation submission latency on either chain
	// (Cosmos submission is not the paper's bottleneck; this mirrors the
	// guest relayer's CPLatency).
	Latency sim.Dist
	// MetricsNamespace prefixes every metric (default
	// "relayer.link.<LinkID>") so links never collide in one registry.
	MetricsNamespace string
	// NodeID is the relayer's network address (default
	// netsim.LinkRelayerNode(LinkID)).
	NodeID netsim.NodeID
	// Payee is this relayer's identity in ICS-29 fee escrows (default
	// "pair:<LinkID>"). Competing relayers on one link need distinct
	// payees so first-to-deliver fee claims attribute correctly.
	Payee string

	A, B PairSideConfig
}

// pairTrace tracks one link-sourced packet until it is acked or timed out.
type pairTrace struct {
	packet    *ibc.Packet
	src       *pairSide
	sentAt    time.Time
	delivered bool
	inFlight  bool // a timeout submission is pending
}

// pairSide is the per-end runtime state of a PairRelayer. Work is grouped
// by proof origin: everything queued on side X is proven against X's state
// and submitted to the peer chain, gated on the client-of-X the peer runs.
type pairSide struct {
	c    PairSideConfig
	peer *pairSide

	cursor int // EventsSince cursor on this chain

	// outPackets are packets sourced on this side awaiting delivery to the
	// peer; outAcks are acks written on this side (for peer-sourced
	// packets) awaiting submission on the peer.
	outPackets []cpWork
	outAcks    []ackWork

	// pushed is the highest height of this chain installed in the peer's
	// client of it; syncedTo the highest update already enqueued.
	pushed   uint64
	syncedTo uint64

	// ops serialises submissions to the peer's front-end: a RecvPacket
	// must never overtake the UpdateClient it depends on.
	ops    []*cpOp
	opBusy bool
}

// PairRelayer relays one mesh link between two Cosmos-style chains over
// the simulated network: client updates in both directions, packet
// delivery with membership proofs, ack relaying, and timeout proofs. It is
// the cosmos↔cosmos sibling of Relayer — no host-transaction chunking, but
// the same strict per-route ownership a mesh needs when many relayers
// share the chains.
type PairRelayer struct {
	cfg   PairConfig
	ns    string
	sched *sim.Scheduler
	rng   *rand.Rand

	a, b *pairSide

	net   *netsim.Network
	ep    *netsim.Endpoint
	retry netsim.RetryPolicy

	// traces tracks link-sourced packets in send order (a slice, not a
	// map: timeout scans must iterate deterministically).
	traces map[string]*pairTrace
	order  []string

	tel          *telemetry.Telemetry
	mUpdates     *telemetry.Counter
	mDelivered   *telemetry.Counter
	mAcks        *telemetry.Counter
	mTimeouts    *telemetry.Counter
	mRecvFailed  *telemetry.Counter
	mHopLatency  *telemetry.Histogram
	mNetRetries  *telemetry.Counter
	mNetDead     *telemetry.Counter
	mNetAttempts *telemetry.Histogram
	mLostRace    *telemetry.Counter
	mFeesClaimed *telemetry.Counter

	// healthLat is the EWMA hop-delivery latency behind Health().
	healthLat  float64
	healthSeen bool

	// feeEscrows are the fee middlewares this relayer earns from.
	feeEscrows []FeeClaimer
}

// PairOption configures a PairRelayer.
type PairOption func(*PairRelayer)

// WithPairTelemetry wires the relayer's metrics into t.
func WithPairTelemetry(t *telemetry.Telemetry) PairOption {
	return func(r *PairRelayer) { r.tel = t }
}

// NewPair creates a pair relayer on net (required: mesh links always run
// over the simulated network; a zero-value netsim config is lossless).
func NewPair(cfg PairConfig, sched *sim.Scheduler, net *netsim.Network, opts ...PairOption) *PairRelayer {
	if cfg.Latency == nil {
		cfg.Latency = sim.Uniform{Min: 300 * time.Millisecond, Max: 1500 * time.Millisecond}
	}
	r := &PairRelayer{
		cfg:    cfg,
		sched:  sched,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		net:    net,
		retry:  netsim.DefaultRetryPolicy(),
		traces: make(map[string]*pairTrace),
	}
	r.ns = cfg.MetricsNamespace
	if r.ns == "" {
		r.ns = "relayer.link." + cfg.LinkID
	}
	nodeID := cfg.NodeID
	if nodeID == "" {
		nodeID = netsim.LinkRelayerNode(cfg.LinkID)
	}
	r.a = &pairSide{c: cfg.A}
	r.b = &pairSide{c: cfg.B}
	r.a.peer, r.b.peer = r.b, r.a
	for _, o := range opts {
		o(r)
	}
	var reg *telemetry.Registry
	if r.tel != nil {
		reg = r.tel.Metrics
	}
	r.mUpdates = reg.Counter(r.ns + ".client_updates")
	r.mDelivered = reg.Counter(r.ns + ".delivered")
	r.mAcks = reg.Counter(r.ns + ".acks")
	r.mTimeouts = reg.Counter(r.ns + ".timeouts_submitted")
	r.mRecvFailed = reg.Counter(r.ns + ".recv_failed")
	r.mHopLatency = reg.Histogram(r.ns + ".hop.latency_s")
	r.mNetRetries = reg.Counter(r.ns + ".net_retries")
	r.mNetDead = reg.Counter(r.ns + ".net_dead_letters")
	r.mNetAttempts = reg.Histogram(r.ns + ".net_attempts")
	r.mLostRace = reg.Counter(r.ns + ".lost_race")
	r.mFeesClaimed = reg.Counter(r.ns + ".fees_claimed_tokens")
	r.ep = net.Node(nodeID, r.onNetMessage, nil)
	return r
}

// PayeeID is the relayer's identity in fee escrows (ICS-29 payee).
func (r *PairRelayer) PayeeID() string {
	if r.cfg.Payee != "" {
		return r.cfg.Payee
	}
	return "pair:" + r.cfg.LinkID
}

// RegisterFeeClaimer adds a fee escrow this relayer earns from.
func (r *PairRelayer) RegisterFeeClaimer(c FeeClaimer) {
	if c != nil {
		r.feeEscrows = append(r.feeEscrows, c)
	}
}

// ClaimFees sweeps accrued packet fees from every registered escrow and
// returns the total claimed per denom.
func (r *PairRelayer) ClaimFees() map[string]uint64 {
	var total map[string]uint64
	for _, esc := range r.feeEscrows {
		for denom, amt := range esc.Claim(r.PayeeID()) {
			if total == nil {
				total = make(map[string]uint64)
			}
			total[denom] += amt
			r.mFeesClaimed.Add(amt)
		}
	}
	return total
}

// Node is the relayer's address on the simulated network; mesh wiring
// targets it with block notifications and fault profiles.
func (r *PairRelayer) Node() netsim.NodeID { return r.ep.ID() }

func (r *PairRelayer) netObs() netsim.RetryObserver {
	return netsim.RetryObserver{Retries: r.mNetRetries, DeadLetters: r.mNetDead, Attempts: r.mNetAttempts}
}

// onNetMessage consumes block notifications; the sender identifies which
// end produced a block.
func (r *PairRelayer) onNetMessage(from netsim.NodeID, kind string, _ any) {
	if kind != netsim.KindCPBlock {
		return
	}
	switch from {
	case r.a.c.Node:
		r.onBlock(r.a)
	case r.b.c.Node:
		r.onBlock(r.b)
	}
}

// OnBlockA / OnBlockB process a new block on the named end (the direct
// entry points tests and non-netsim drivers use).
func (r *PairRelayer) OnBlockA() { r.onBlock(r.a) }

// OnBlockB is OnBlockA for the B end.
func (r *PairRelayer) OnBlockB() { r.onBlock(r.b) }

// onBlock polls side s's chain events. One scan feeds the side's outbound
// queues: committed packets sourced on the link's route, and acks written
// for peer-sourced packets. Foreign routes (other links on the same
// chain) are ignored — the mesh equivalent of Config.StrictRoutes.
func (r *PairRelayer) onBlock(s *pairSide) {
	events, cursor := s.c.Chain.EventsSince(s.cursor)
	s.cursor = cursor
	for _, ev := range events {
		switch e := ev.Payload.(type) {
		case counterparty.EventPacketsCommitted:
			for _, p := range e.Packets {
				if p.SourcePort != s.c.Port || p.SourceChannel != s.c.Channel {
					continue
				}
				s.outPackets = append(s.outPackets, cpWork{packet: p, height: ev.Height})
				key := traceKey(p)
				r.traces[key] = &pairTrace{packet: p, src: s, sentAt: r.sched.Now()}
				r.order = append(r.order, key)
			}
		case ibc.EventWriteAck:
			p := e.Packet
			if p.DestPort != s.c.Port || p.DestChannel != s.c.Channel {
				continue
			}
			// The ack is in this chain's store now; the next block's root
			// (ev.Height+1) is the first that commits it.
			s.outAcks = append(s.outAcks, ackWork{packet: p, ack: e.Ack, height: ev.Height + 1})
		}
	}
	r.maybeSync(s)
	// A new block on s also makes previously future ack heights provable
	// on the peer-facing queue of this side; nothing to do for the peer
	// side — its own heights did not move.
}

// maybeSync pushes one client update of side s to the peer when queued
// work needs a height the peer's client does not hold, then flushes. Like
// the guest-side scheduler it issues at most one update per (chain,
// height): every queue item provable at that height rides the same update.
func (r *PairRelayer) maybeSync(s *pairSide) {
	target := s.c.Chain.Height()
	if target <= s.syncedTo {
		r.flush(s)
		return
	}
	needed := false
	for _, w := range s.outPackets {
		if w.height > s.pushed && w.height <= target {
			needed = true
			break
		}
	}
	if !needed {
		for _, w := range s.outAcks {
			if w.height > s.pushed && w.height <= target {
				needed = true
				break
			}
		}
	}
	if !needed {
		r.flush(s)
		return
	}
	upd, err := s.c.Chain.UpdateAt(target)
	if err != nil {
		return
	}
	s.syncedTo = target
	r.enqueue(s, netsim.KindUpdateClient,
		netsim.MsgUpdateClient{ClientID: s.peer.c.ClientOfPeer, Header: upd.Marshal()},
		func(_ any, err error) {
			if err != nil {
				return
			}
			r.mUpdates.Inc()
			if target > s.pushed {
				s.pushed = target
			}
			r.flush(s)
		})
}

// requestSync forces a client update of side s to its current height even
// without queued work — timeout proofs need the source's client of the
// destination pulled past the expiry.
func (r *PairRelayer) requestSync(s *pairSide) {
	target := s.c.Chain.Height()
	if target <= s.syncedTo {
		return
	}
	upd, err := s.c.Chain.UpdateAt(target)
	if err != nil {
		return
	}
	s.syncedTo = target
	r.enqueue(s, netsim.KindUpdateClient,
		netsim.MsgUpdateClient{ClientID: s.peer.c.ClientOfPeer, Header: upd.Marshal()},
		func(_ any, err error) {
			if err == nil {
				r.mUpdates.Inc()
				if target > s.pushed {
					s.pushed = target
				}
			}
		})
}

// flush submits side s's provable work to the peer: RecvPacket for
// s-sourced packets, AcknowledgePacket for acks written on s. Items whose
// height the peer's client does not hold yet stay queued.
func (r *PairRelayer) flush(s *pairSide) {
	var laterPackets []cpWork
	for _, w := range s.outPackets {
		if w.height > s.pushed {
			laterPackets = append(laterPackets, w)
			continue
		}
		w := w
		path := ibc.CommitmentPath(w.packet.SourcePort, w.packet.SourceChannel, w.packet.Sequence)
		_, proof, err := s.c.Chain.ProveMembershipAt(s.pushed, path)
		if err != nil {
			laterPackets = append(laterPackets, w)
			continue
		}
		key := traceKey(w.packet)
		r.enqueue(s, netsim.KindRecvPacket,
			netsim.MsgRecvPacket{Packet: w.packet, Proof: proof, ProofHeight: ibc.Height(s.pushed)},
			func(resp any, err error) {
				if err != nil {
					// Application rejection (e.g. expired packet); the
					// timeout scan refunds it. Transport loss retries
					// inside ReliableCall and never lands here.
					r.mRecvFailed.Inc()
					return
				}
				if rr, ok := resp.(netsim.RespRecvPacket); ok && rr.Duplicate {
					// A competing relayer won this packet; mark it
					// delivered so the timeout scan stands down and count
					// the lost race — the winner owns the delivery stats,
					// the ack, and the fee.
					r.mLostRace.Inc()
					if tr, ok := r.traces[key]; ok {
						tr.delivered = true
					}
					return
				}
				r.mDelivered.Inc()
				if tr, ok := r.traces[key]; ok {
					tr.delivered = true
					lat := r.sched.Now().Sub(tr.sentAt).Seconds()
					r.mHopLatency.Observe(lat)
					r.observeHealthLatency(lat)
				}
				// The peer's ack comes back through the peer side's event
				// scan (EventWriteAck) at its next block.
			})
	}
	s.outPackets = laterPackets

	var laterAcks []ackWork
	for _, w := range s.outAcks {
		if w.height > s.pushed {
			laterAcks = append(laterAcks, w)
			continue
		}
		w := w
		path := ibc.AckPath(w.packet.DestPort, w.packet.DestChannel, w.packet.Sequence)
		_, proof, err := s.c.Chain.ProveMembershipAt(s.pushed, path)
		if err != nil {
			laterAcks = append(laterAcks, w)
			continue
		}
		r.enqueue(s, netsim.KindAckPacket,
			netsim.MsgAckPacket{Packet: w.packet, Ack: w.ack, Proof: proof, ProofHeight: ibc.Height(s.pushed)},
			func(_ any, err error) {
				if err == nil {
					r.mAcks.Inc()
					r.clearTrace(traceKey(w.packet))
				}
			})
	}
	s.outAcks = laterAcks
}

// CheckTimeouts scans undelivered link-sourced packets for expiry and
// submits receipt non-membership proofs to the source chain (the same
// duty the guest relayer performs; unordered channels only, like the rest
// of the mesh plane).
func (r *PairRelayer) CheckTimeouts() {
	for _, key := range r.order {
		tr, ok := r.traces[key]
		if !ok || tr.delivered || tr.inFlight {
			continue
		}
		p := tr.packet
		src, dst := tr.src, tr.src.peer
		if !src.c.Chain.Handler().HasCommitment(p) {
			r.clearTrace(key)
			continue // acked or already timed out
		}
		if p.TimeoutHeight == 0 && p.TimeoutTimestamp.IsZero() {
			continue
		}
		client, err := src.c.Chain.Handler().Client(src.c.ClientOfPeer)
		if err != nil {
			continue
		}
		known := client.LatestHeight()
		knownTime, err := client.ConsensusTime(known)
		if err != nil {
			continue
		}
		if !p.TimedOut(known, knownTime) {
			// Not provable at the trusted height yet; if the live peer
			// head is past the expiry, pull the client forward for a
			// later scan.
			dstH := dst.c.Chain.Height()
			if hdr, err := dst.c.Chain.HeaderAt(dstH); err == nil && p.TimedOut(ibc.Height(dstH), hdr.Time) {
				r.requestSync(dst)
			}
			continue
		}
		receiptPath := ibc.ReceiptPath(p.DestPort, p.DestChannel, p.Sequence)
		proof, err := dst.c.Chain.ProveNonMembershipAt(uint64(known), receiptPath)
		if err != nil {
			continue
		}
		tr.inFlight = true
		// The proof comes from dst, so it rides dst's op stream (whose
		// submissions target the peer = the packet's source chain).
		r.enqueue(dst, netsim.KindTimeoutPacket,
			netsim.MsgTimeoutPacket{Packet: p, Proof: proof, ProofHeight: known},
			func(_ any, err error) {
				tr.inFlight = false
				if err == nil {
					r.mTimeouts.Inc()
					r.clearTrace(key)
				}
			})
	}
}

// clearTrace drops a settled packet; the order slice compacts lazily on
// the next timeout scan.
func (r *PairRelayer) clearTrace(key string) {
	if _, ok := r.traces[key]; !ok {
		return
	}
	delete(r.traces, key)
	keep := r.order[:0]
	for _, k := range r.order {
		if _, ok := r.traces[k]; ok {
			keep = append(keep, k)
		}
	}
	r.order = keep
}

// enqueue appends one operation to side s's FIFO (submissions land on
// s.peer's chain) and starts the pump if idle. Each dispatch waits a
// sampled submission latency, so the queue drains at deployment pace.
func (r *PairRelayer) enqueue(s *pairSide, kind string, payload any, onDone func(resp any, err error)) {
	s.ops = append(s.ops, &cpOp{kind: kind, payload: payload, onDone: onDone})
	if !s.opBusy {
		s.opBusy = true
		r.pump(s)
	}
}

// pump issues side s's head operation and advances on completion.
func (r *PairRelayer) pump(s *pairSide) {
	if len(s.ops) == 0 {
		s.opBusy = false
		return
	}
	op := s.ops[0]
	r.sched.After(r.cfg.Latency.Sample(r.rng), func() {
		r.ep.ReliableCall(s.peer.c.Node, op.kind, op.payload, r.retry, r.netObs(), func(resp any, err error) {
			s.ops = s.ops[1:]
			op.onDone(resp, err)
			r.pump(s)
		})
	})
}
