package relayer

import (
	"testing"
	"time"

	"repro/internal/counterparty"
	"repro/internal/cryptoutil"
	"repro/internal/guest"
	"repro/internal/guestblock"
	"repro/internal/host"
	"repro/internal/ibc"
)

// bootEnv deploys a guest contract and counterparty for bootstrap tests.
type bootEnv struct {
	clock    *host.ManualClock
	chain    *host.Chain
	contract *guest.Contract
	cp       *counterparty.Chain
	keys     []*cryptoutil.PrivKey
}

func newBootEnv(t *testing.T) *bootEnv {
	return newBootEnvWithCP(t, 10)
}

func newBootEnvWithCP(t *testing.T, cpValidators int) *bootEnv {
	t.Helper()
	clock := host.NewManualClock(time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC))
	chain := host.NewChain(clock)
	payer := cryptoutil.GenerateKey("boot-payer").Public()
	chain.Fund(payer, 1_000_000*host.LamportsPerSOL)

	e := &bootEnv{clock: clock, chain: chain}
	var genesis []guestblock.Validator
	for i := 0; i < 3; i++ {
		k := cryptoutil.GenerateKeyIndexed("boot-val", i)
		e.keys = append(e.keys, k)
		chain.Fund(k.Public(), 200*host.LamportsPerSOL)
		genesis = append(genesis, guestblock.Validator{PubKey: k.Public(), Stake: uint64(100 * host.LamportsPerSOL)})
	}
	contract, _, err := guest.Deploy(chain, guest.Config{
		Params: guest.DefaultParams(), Payer: payer, GenesisValidators: genesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.contract = contract

	cfg := counterparty.DefaultConfig()
	cfg.NumValidators = cpValidators
	cp, err := counterparty.New(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	e.cp = cp

	st, err := contract.State(chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Handler.BindPort("transfer", nopModule{}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Handler().BindPort("transfer", nopModule{}); err != nil {
		t.Fatal(err)
	}
	return e
}

type nopModule struct{}

func (nopModule) OnChanOpen(ibc.PortID, ibc.ChannelID, string) error { return nil }
func (nopModule) OnRecvPacket(ibc.Packet) ([]byte, error)            { return []byte("ok"), nil }
func (nopModule) OnAcknowledgementPacket(ibc.Packet, []byte) error   { return nil }
func (nopModule) OnTimeoutPacket(ibc.Packet) error                   { return nil }

func TestBootstrapOpensEverything(t *testing.T) {
	e := newBootEnv(t)
	b := &Bootstrap{
		HostChain: e.chain, Contract: e.contract, CP: e.cp,
		ValidatorKeys: e.keys, GuestPort: "transfer", CPPort: "transfer",
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.contract.State(e.chain)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := st.Handler.Connection(res.GuestConnection)
	if err != nil {
		t.Fatal(err)
	}
	if conn.State != ibc.StateOpen {
		t.Fatalf("guest connection %v", conn.State)
	}
	ch, err := st.Handler.Channel("transfer", res.GuestChannel)
	if err != nil {
		t.Fatal(err)
	}
	if ch.State != ibc.StateOpen {
		t.Fatalf("guest channel %v", ch.State)
	}
	cpConn, err := e.cp.Handler().Connection(res.CPConnection)
	if err != nil {
		t.Fatal(err)
	}
	if cpConn.State != ibc.StateOpen {
		t.Fatalf("cp connection %v", cpConn.State)
	}
	cpCh, err := e.cp.Handler().Channel("transfer", res.CPChannel)
	if err != nil {
		t.Fatal(err)
	}
	if cpCh.State != ibc.StateOpen {
		t.Fatalf("cp channel %v", cpCh.State)
	}

	// The handshake minted and finalised several guest blocks.
	if st.Height() < 4 {
		t.Fatalf("guest height after handshake = %d", st.Height())
	}
	// Both light clients advanced.
	tmc, err := st.Handler.Client(res.GuestClientID)
	if err != nil {
		t.Fatal(err)
	}
	if tmc.LatestHeight() < 2 {
		t.Fatal("tendermint client never updated")
	}
	glc, err := e.cp.Handler().Client(res.GuestOnCPClientID)
	if err != nil {
		t.Fatal(err)
	}
	if glc.LatestHeight() < 2 {
		t.Fatal("guest client never updated")
	}
}

func TestBootstrapReuseOpensSecondChannel(t *testing.T) {
	e := newBootEnv(t)
	b := &Bootstrap{
		HostChain: e.chain, Contract: e.contract, CP: e.cp,
		ValidatorKeys: e.keys, GuestPort: "transfer", CPPort: "transfer",
	}
	first, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.contract.State(e.chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Handler.BindPort("gov", nopModule{}); err != nil {
		t.Fatal(err)
	}
	if err := e.cp.Handler().BindPort("gov", nopModule{}); err != nil {
		t.Fatal(err)
	}
	second, err := (&Bootstrap{
		HostChain: e.chain, Contract: e.contract, CP: e.cp,
		ValidatorKeys: e.keys, GuestPort: "gov", CPPort: "gov",
		Version: "gov-1", Reuse: first,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if second.GuestChannel == first.GuestChannel {
		t.Fatal("second channel reused the first id")
	}
	if second.GuestConnection != first.GuestConnection {
		t.Fatal("second channel did not reuse the connection")
	}
	ch, err := st.Handler.Channel("gov", second.GuestChannel)
	if err != nil {
		t.Fatal(err)
	}
	if ch.State != ibc.StateOpen || ch.Version != "gov-1" {
		t.Fatalf("gov channel: %+v", ch)
	}
}

func TestBootstrapFailsWithoutQuorumKeys(t *testing.T) {
	e := newBootEnv(t)
	b := &Bootstrap{
		HostChain: e.chain, Contract: e.contract, CP: e.cp,
		ValidatorKeys: e.keys[:1], // 1 of 3 equal stakes cannot finalise
		GuestPort:     "transfer", CPPort: "transfer",
	}
	if _, err := b.Run(); err == nil {
		t.Fatal("bootstrap succeeded without a finalisation quorum")
	}
}
