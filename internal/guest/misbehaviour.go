package guest

import (
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// Misbehaviour kinds a fisherman can report (§III-C).
const (
	// EvidenceDoubleSign: two signatures from one validator for different
	// blocks at the same height.
	EvidenceDoubleSign byte = iota + 1
	// EvidenceFutureHeight: a signature for a block height beyond the
	// chain head.
	EvidenceFutureHeight
	// EvidenceWrongFork: a signature for a block that differs from the
	// known block at that height.
	EvidenceWrongFork
)

// Evidence is a fisherman's misbehaviour proof. Hashes are guest block
// hashes; signatures are over the corresponding signing payloads and are
// verified by the host runtime precompile when the evidence is submitted.
type Evidence struct {
	Kind      byte
	Validator cryptoutil.PubKey
	Height    uint64
	BlockA    cryptoutil.Hash
	SigA      cryptoutil.Signature
	// BlockB/SigB are used by EvidenceDoubleSign only.
	BlockB cryptoutil.Hash
	SigB   cryptoutil.Signature
}

// Marshal encodes the evidence for an OpSubmitMisbehaviour instruction.
func (e *Evidence) Marshal() []byte {
	w := wire.NewWriter()
	w.U8(OpSubmitMisbehaviour)
	w.U8(e.Kind)
	w.PubKey(e.Validator)
	w.U64(e.Height)
	w.Hash(e.BlockA)
	w.Signature(e.SigA)
	w.Hash(e.BlockB)
	w.Signature(e.SigB)
	return w.Bytes()
}

func decodeEvidence(r *wire.Reader) (*Evidence, error) {
	e := &Evidence{
		Kind:      r.U8(),
		Validator: r.PubKey(),
		Height:    r.U64(),
	}
	e.BlockA = r.Hash()
	e.SigA = r.Signature()
	e.BlockB = r.Hash()
	e.SigB = r.Signature()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode evidence: %w", err)
	}
	return e, nil
}

// SigVerifies returns the precompile verification requests a fisherman
// must attach to the submitting transaction: the runtime (not the
// contract) proves the signatures are genuine.
func (e *Evidence) SigVerifies() []sigVerifySpec {
	payloadA := signingPayloadBytes(e.BlockA)
	out := []sigVerifySpec{{Pub: e.Validator, Msg: payloadA, Sig: e.SigA}}
	if e.Kind == EvidenceDoubleSign {
		out = append(out, sigVerifySpec{Pub: e.Validator, Msg: signingPayloadBytes(e.BlockB), Sig: e.SigB})
	}
	return out
}

// sigVerifySpec mirrors host.SigVerify without importing it here.
type sigVerifySpec struct {
	Pub cryptoutil.PubKey
	Msg []byte
	Sig cryptoutil.Signature
}

// signingPayloadBytes converts a block hash to the signed payload bytes.
func signingPayloadBytes(blockHash cryptoutil.Hash) []byte {
	p := payloadForHash(blockHash)
	return p[:]
}
