package guest

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/ibc"
	"repro/internal/wire"
)

// Instruction opcodes of the Guest Contract.
const (
	// OpSendPacket: a client smart contract sends an IBC packet (Alg. 1
	// SendPacket).
	OpSendPacket byte = iota + 1
	// OpGenerateBlock mints a new guest block if due (Alg. 1
	// GenerateBlock); callable by anyone.
	OpGenerateBlock
	// OpSign is a validator's finalisation vote (Alg. 1 Sign).
	OpSign
	// OpStake adds candidate stake.
	OpStake
	// OpUnstake begins a candidate's exit.
	OpUnstake
	// OpWithdraw claims matured withdrawals.
	OpWithdraw
	// OpChunk appends bytes to a staging buffer (tx-size workaround).
	OpChunk
	// OpCommitUpdateClient applies a staged light-client update.
	OpCommitUpdateClient
	// OpCommitRecvPacket applies a staged incoming packet (Alg. 1
	// ReceivePacket).
	OpCommitRecvPacket
	// OpCommitAck applies a staged acknowledgement for a sent packet.
	OpCommitAck
	// OpCommitTimeout applies a staged timeout proof for a sent packet.
	OpCommitTimeout
	// OpSubmitMisbehaviour slashes a validator given fisherman evidence
	// (§III-C).
	OpSubmitMisbehaviour
	// OpEmergencyRelease frees all staked assets once the chain has been
	// dead for EmergencyTimeout (§VI-A's self-destruction mitigation for
	// the last-validator-wishing-to-quit problem).
	OpEmergencyRelease
)

// SendPacketArgs are the OpSendPacket payload.
type SendPacketArgs struct {
	Sender           cryptoutil.PubKey
	Port             ibc.PortID
	Channel          ibc.ChannelID
	Data             []byte
	TimeoutHeight    ibc.Height
	TimeoutTimestamp time.Time
}

// EncodeSendPacket builds OpSendPacket instruction data.
func EncodeSendPacket(a *SendPacketArgs) []byte {
	w := wire.NewWriterSize(1 + len(a.Sender) +
		2 + len(a.Port) + 2 + len(a.Channel) + 4 + len(a.Data) + 8 + 8)
	w.U8(OpSendPacket)
	w.PubKey(a.Sender)
	w.String16(string(a.Port))
	w.String16(string(a.Channel))
	w.Bytes32(a.Data)
	w.U64(uint64(a.TimeoutHeight))
	w.Time(a.TimeoutTimestamp)
	return w.Bytes()
}

func decodeSendPacket(r *wire.Reader) (*SendPacketArgs, error) {
	a := &SendPacketArgs{
		Sender:  r.PubKey(),
		Port:    ibc.PortID(r.String16()),
		Channel: ibc.ChannelID(r.String16()),
		Data:    r.Bytes32(),
	}
	a.TimeoutHeight = ibc.Height(r.U64())
	a.TimeoutTimestamp = r.Time()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode send packet: %w", err)
	}
	return a, nil
}

// EncodeGenerateBlock builds OpGenerateBlock instruction data.
func EncodeGenerateBlock() []byte { return []byte{OpGenerateBlock} }

// SignArgs are the OpSign payload. The actual Ed25519 verification happens
// at transaction level via the runtime precompile; the instruction carries
// the claim the contract checks against the verified set.
type SignArgs struct {
	Height    uint64
	PubKey    cryptoutil.PubKey
	Signature cryptoutil.Signature
}

// EncodeSign builds OpSign instruction data.
func EncodeSign(a *SignArgs) []byte {
	w := wire.NewWriterSize(1 + 8 + len(a.PubKey) + len(a.Signature))
	w.U8(OpSign)
	w.U64(a.Height)
	w.PubKey(a.PubKey)
	w.Signature(a.Signature)
	return w.Bytes()
}

func decodeSign(r *wire.Reader) (*SignArgs, error) {
	a := &SignArgs{Height: r.U64(), PubKey: r.PubKey(), Signature: r.Signature()}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode sign: %w", err)
	}
	return a, nil
}

// StakeArgs are the OpStake payload; the lamports move from the signing
// owner to the contract.
type StakeArgs struct {
	Validator cryptoutil.PubKey
	Amount    uint64
}

// EncodeStake builds OpStake instruction data.
func EncodeStake(a *StakeArgs) []byte {
	w := wire.NewWriter()
	w.U8(OpStake)
	w.PubKey(a.Validator)
	w.U64(a.Amount)
	return w.Bytes()
}

func decodeStake(r *wire.Reader) (*StakeArgs, error) {
	a := &StakeArgs{Validator: r.PubKey(), Amount: r.U64()}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode stake: %w", err)
	}
	return a, nil
}

// EncodeUnstake builds OpUnstake instruction data.
func EncodeUnstake(validator cryptoutil.PubKey) []byte {
	w := wire.NewWriter()
	w.U8(OpUnstake)
	w.PubKey(validator)
	return w.Bytes()
}

// EncodeWithdraw builds OpWithdraw instruction data.
func EncodeWithdraw() []byte { return []byte{OpWithdraw} }

// EncodeEmergencyRelease builds OpEmergencyRelease instruction data.
func EncodeEmergencyRelease() []byte { return []byte{OpEmergencyRelease} }

// ChunkArgs are the OpChunk payload: append Data to the fee payer's buffer
// and record any runtime-verified signatures for later commit use.
type ChunkArgs struct {
	BufferID uint64
	Data     []byte
	// SigClaims list (pubkey, payload) pairs this transaction verified
	// via the precompile; the contract records their digests.
	SigClaims []SigClaim
}

// SigClaim is a claim that the runtime verified pub's signature over
// Payload in this transaction.
type SigClaim struct {
	Pub     cryptoutil.PubKey
	Payload []byte
}

// EncodeChunk builds OpChunk instruction data.
func EncodeChunk(a *ChunkArgs) []byte {
	w := wire.NewWriter()
	w.U8(OpChunk)
	w.U64(a.BufferID)
	w.Bytes32(a.Data)
	w.U16(uint16(len(a.SigClaims)))
	for _, c := range a.SigClaims {
		w.PubKey(c.Pub)
		w.Bytes16(c.Payload)
	}
	return w.Bytes()
}

func decodeChunk(r *wire.Reader) (*ChunkArgs, error) {
	a := &ChunkArgs{BufferID: r.U64(), Data: r.Bytes32()}
	n := int(r.U16())
	for i := 0; i < n; i++ {
		a.SigClaims = append(a.SigClaims, SigClaim{Pub: r.PubKey(), Payload: r.Bytes16()})
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode chunk: %w", err)
	}
	return a, nil
}

// CommitArgs reference a staged buffer; ClientID is used by
// OpCommitUpdateClient only.
type CommitArgs struct {
	BufferID uint64
	ClientID ibc.ClientID
}

// EncodeCommit builds a commit instruction with the given opcode.
func EncodeCommit(op byte, a *CommitArgs) []byte {
	w := wire.NewWriter()
	w.U8(op)
	w.U64(a.BufferID)
	w.String16(string(a.ClientID))
	return w.Bytes()
}

func decodeCommit(r *wire.Reader) (*CommitArgs, error) {
	a := &CommitArgs{BufferID: r.U64(), ClientID: ibc.ClientID(r.String16())}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode commit: %w", err)
	}
	return a, nil
}

// RecvPayload is the staged payload for OpCommitRecvPacket: the packet,
// the proof height on the counterparty, and the commitment proof.
type RecvPayload struct {
	Packet      *ibc.Packet
	ProofHeight ibc.Height
	Proof       []byte
}

// MarshalRecvPayload encodes a RecvPayload for staging.
func MarshalRecvPayload(p *RecvPayload) []byte {
	w := wire.NewWriter()
	ibc.EncodePacket(w, p.Packet)
	w.U64(uint64(p.ProofHeight))
	w.Bytes32(p.Proof)
	return w.Bytes()
}

// UnmarshalRecvPayload decodes a staged RecvPayload.
func UnmarshalRecvPayload(data []byte) (*RecvPayload, error) {
	r := wire.NewReader(data)
	pkt, err := ibc.DecodePacket(r)
	if err != nil {
		return nil, err
	}
	p := &RecvPayload{Packet: pkt}
	p.ProofHeight = ibc.Height(r.U64())
	p.Proof = r.Bytes32()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode recv payload: %w", err)
	}
	return p, nil
}

// AckPayload is the staged payload for OpCommitAck.
type AckPayload struct {
	Packet      *ibc.Packet
	Ack         []byte
	ProofHeight ibc.Height
	Proof       []byte
}

// MarshalAckPayload encodes an AckPayload for staging.
func MarshalAckPayload(p *AckPayload) []byte {
	w := wire.NewWriter()
	ibc.EncodePacket(w, p.Packet)
	w.Bytes32(p.Ack)
	w.U64(uint64(p.ProofHeight))
	w.Bytes32(p.Proof)
	return w.Bytes()
}

// UnmarshalAckPayload decodes a staged AckPayload.
func UnmarshalAckPayload(data []byte) (*AckPayload, error) {
	r := wire.NewReader(data)
	pkt, err := ibc.DecodePacket(r)
	if err != nil {
		return nil, err
	}
	p := &AckPayload{Packet: pkt}
	p.Ack = r.Bytes32()
	p.ProofHeight = ibc.Height(r.U64())
	p.Proof = r.Bytes32()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode ack payload: %w", err)
	}
	return p, nil
}

// TimeoutPayload is the staged payload for OpCommitTimeout.
type TimeoutPayload struct {
	Packet      *ibc.Packet
	ProofHeight ibc.Height
	Proof       []byte
}

// MarshalTimeoutPayload encodes a TimeoutPayload for staging.
func MarshalTimeoutPayload(p *TimeoutPayload) []byte {
	w := wire.NewWriter()
	ibc.EncodePacket(w, p.Packet)
	w.U64(uint64(p.ProofHeight))
	w.Bytes32(p.Proof)
	return w.Bytes()
}

// UnmarshalTimeoutPayload decodes a staged TimeoutPayload.
func UnmarshalTimeoutPayload(data []byte) (*TimeoutPayload, error) {
	r := wire.NewReader(data)
	pkt, err := ibc.DecodePacket(r)
	if err != nil {
		return nil, err
	}
	p := &TimeoutPayload{Packet: pkt}
	p.ProofHeight = ibc.Height(r.U64())
	p.Proof = r.Bytes32()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode timeout payload: %w", err)
	}
	return p, nil
}

// UpdateClientPayload is staged for OpCommitUpdateClient.
type UpdateClientPayload struct {
	Header []byte
}

// MarshalUpdateClientPayload encodes the staged client update.
func MarshalUpdateClientPayload(header []byte) []byte {
	w := wire.NewWriter()
	w.Bytes32(header)
	return w.Bytes()
}

// UnmarshalUpdateClientPayload decodes the staged client update.
func UnmarshalUpdateClientPayload(data []byte) (*UpdateClientPayload, error) {
	r := wire.NewReader(data)
	p := &UpdateClientPayload{Header: r.Bytes32()}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("guest: decode update-client payload: %w", err)
	}
	return p, nil
}
