package guest

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/guestblock"
	"repro/internal/host"
	"repro/internal/ibc"
	"repro/internal/lightclient/guestlc"
	"repro/internal/telemetry"
)

// Errors returned by the Guest Contract.
var (
	ErrHeadNotFinalised = errors.New("guest: head block is not finalised")
	ErrNothingToCommit  = errors.New("guest: state unchanged and head younger than delta")
	ErrUnknownHeight    = errors.New("guest: unknown block height")
	// ErrSnapshotPruned marks a height that existed but whose store version
	// fell out of the retention window. Distinct from ErrUnknownHeight so a
	// relayer can tell "retry against a newer root" from "bogus height".
	ErrSnapshotPruned    = errors.New("guest: snapshot pruned from retention window")
	ErrNotValidator      = errors.New("guest: signer is not an epoch validator")
	ErrAlreadySigned     = errors.New("guest: validator already signed this block")
	ErrBadSignature      = errors.New("guest: signature not verified by runtime")
	ErrSlashedValidator  = errors.New("guest: validator was slashed")
	ErrStakeTooSmall     = errors.New("guest: stake below minimum")
	ErrUnknownCandidate  = errors.New("guest: unknown candidate")
	ErrUnknownBuffer     = errors.New("guest: unknown staging buffer")
	ErrNothingToWithdraw = errors.New("guest: no matured withdrawals")
	ErrBadEvidence       = errors.New("guest: misbehaviour evidence invalid")
	ErrNotDead           = errors.New("guest: chain is not dead (emergency timeout not reached)")
	ErrHalted            = errors.New("guest: contract halted after emergency release")
)

// BlockEntry is a guest block with its finalisation bookkeeping.
type BlockEntry struct {
	Block       *guestblock.Block
	Epoch       *guestblock.Epoch
	Signatures  map[cryptoutil.PubKey]cryptoutil.Signature
	SignedStake uint64
	Finalised   bool
	// Packets are the outgoing packets committed in this block (Alg. 2
	// block.packets).
	Packets []*ibc.Packet
	// CreatedAt / FinalisedAt are host timestamps for the latency
	// experiments (Fig. 2, Fig. 6, Table I).
	CreatedAt   time.Time
	FinalisedAt time.Time
}

// SignedBlock assembles the light-client update form of a finalised block,
// with signatures in canonical (pubkey-sorted) order.
func (e *BlockEntry) SignedBlock() *guestblock.SignedBlock {
	sb := &guestblock.SignedBlock{Block: e.Block}
	keys := make([]cryptoutil.PubKey, 0, len(e.Signatures))
	for pub := range e.Signatures {
		keys = append(keys, pub)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	for _, pub := range keys {
		sb.Signatures = append(sb.Signatures, guestblock.BlockSignature{
			Height:    e.Block.Height,
			PubKey:    pub,
			Signature: e.Signatures[pub],
		})
	}
	return sb
}

// Withdrawal is stake waiting out the unbonding period.
type Withdrawal struct {
	PubKey      cryptoutil.PubKey
	Owner       cryptoutil.PubKey
	Amount      host.Lamports
	AvailableAt time.Time
}

// Candidate is a staked validator candidate.
type Candidate struct {
	PubKey cryptoutil.PubKey
	// Owner is the host account that staked and receives withdrawals.
	Owner cryptoutil.PubKey
	Stake host.Lamports
}

// stagingKey identifies a chunk-upload buffer.
type stagingKey struct {
	owner cryptoutil.PubKey
	id    uint64
}

// StagingBuffer accumulates a payload too large for one host transaction
// (the tx-size workaround of §IV), together with the set of signature
// verifications the runtime performed while the chunks were uploaded.
type StagingBuffer struct {
	Data []byte
	// VerifiedSigs records runtime-verified (pubkey, payload) digests so
	// the commit instruction can trust them without re-verification.
	VerifiedSigs map[cryptoutil.Hash]bool
	// Txs counts the host transactions that contributed to this buffer
	// (for the Fig. 4 statistics).
	Txs int
}

// sigDigest identifies a verified (pubkey, payload) pair within a buffer.
func sigDigest(pub cryptoutil.PubKey, payload []byte) cryptoutil.Hash {
	return cryptoutil.HashTagged('Q', pub[:], payload)
}

// State is the Guest Contract's account state: everything Alg. 1 keeps
// on-chain, plus off-chain-queryable bookkeeping (snapshots for proof
// generation, experiment timestamps).
type State struct {
	Params  Params
	Account cryptoutil.PubKey

	Store   *ibc.Store
	Handler *ibc.Handler

	Entries []*BlockEntry

	CurrentEpoch   *guestblock.Epoch
	EpochStartSlot uint64

	Candidates  map[cryptoutil.PubKey]*Candidate
	Slashed     map[cryptoutil.PubKey]bool
	Withdrawals []Withdrawal
	SlashedPot  host.Lamports

	// PendingPackets are packets sent since the last block was created;
	// they ride in the next block.
	PendingPackets []*ibc.Packet

	staging map[stagingKey]*StagingBuffer

	// snapshots[height] is the store version committed at block creation —
	// the simulation analogue of reading historical account data through an
	// RPC node; relayers prove against finalised roots from these. Each
	// handle is an O(1) copy-on-write version, not a deep copy, so the
	// per-block snapshot cost no longer scales with state size.
	snapshots      map[uint64]ibc.Version
	oldestSnapshot uint64
	coldCursor     uint64
	persistErr     error

	// Execution context mirror: the handler's SelfInfo reads these.
	nowTime time.Time
	nowSlot uint64

	// ibcEvents buffers typed handler events during one instruction (the
	// Deploy-time bus subscription appends here); Execute forwards them to
	// the host event log after the instruction succeeds.
	ibcEvents []telemetry.Event

	// execMeter is the compute meter of the instruction currently
	// executing (set by Execute, nil between instructions). Middleware
	// callback budgets charge hook compute through it, so hooks are
	// metered like any other contract code.
	execMeter *host.ComputeMeter

	// Experiment counters.
	TotalFeesCollected host.Lamports

	// Halted is set after an emergency release (§VI-A): the guest chain
	// is dead and the contract refuses all further operations.
	Halted bool
}

// Head returns the latest block entry.
func (s *State) Head() *BlockEntry { return s.Entries[len(s.Entries)-1] }

// Height returns the current head height.
func (s *State) Height() uint64 { return s.Head().Block.Height }

// Entry returns the block entry at height.
func (s *State) Entry(height uint64) (*BlockEntry, error) {
	idx := int(height) - 1
	if idx < 0 || idx >= len(s.Entries) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownHeight, height)
	}
	return s.Entries[idx], nil
}

// SnapshotAt returns a read-only view of the store version committed when
// the block at height was created. A height inside the chain's history whose
// version was released reports ErrSnapshotPruned; a height the chain never
// reached reports ErrUnknownHeight.
func (s *State) SnapshotAt(height uint64) (*ibc.ReadOnlyStore, error) {
	v, ok := s.snapshots[height]
	if !ok {
		if height >= 1 && height <= s.Height() {
			return nil, fmt.Errorf("%w: height %d", ErrSnapshotPruned, height)
		}
		return nil, fmt.Errorf("%w: no snapshot at %d", ErrUnknownHeight, height)
	}
	snap, err := s.Store.At(v)
	if err != nil {
		return nil, fmt.Errorf("guest: snapshot at %d: %w", height, err)
	}
	return snap, nil
}

// ProveMembershipAt generates a membership proof against the state root of
// the block at height (off-chain relayer API).
func (s *State) ProveMembershipAt(height uint64, path string) (value, proof []byte, err error) {
	snap, err := s.SnapshotAt(height)
	if err != nil {
		return nil, nil, err
	}
	return snap.ProveMembership(path)
}

// ProveNonMembershipAt generates an absence proof against the block at
// height (off-chain relayer API, used for timeouts).
func (s *State) ProveNonMembershipAt(height uint64, path string) ([]byte, error) {
	snap, err := s.SnapshotAt(height)
	if err != nil {
		return nil, err
	}
	return snap.ProveNonMembership(path)
}

// BeginDirect prepares the state for a direct (non-transactional) handler
// call — operator bootstrap actions such as the connection handshake,
// which in the deployment run as ordinary governance transactions but are
// not part of the evaluated packet path.
func (s *State) BeginDirect(t time.Time, slot uint64) {
	s.nowTime = t
	s.nowSlot = slot
	s.ibcEvents = nil
}

// Meter returns the compute meter of the instruction currently executing,
// or nil between instructions. Middleware meter sources read it live so
// callback budgets charge the transaction that triggered the hook.
func (s *State) Meter() *host.ComputeMeter { return s.execMeter }

// CurrentHeight implements ibc.SelfInfo: the guest chain's own height.
func (s *State) CurrentHeight() ibc.Height { return ibc.Height(s.Height()) }

// CurrentTime implements ibc.SelfInfo: the host block time.
func (s *State) CurrentTime() time.Time { return s.nowTime }

// ValidateSelfClient implements ibc.SelfInfo: it checks that the
// counterparty's light client for the guest chain refers to a real epoch
// and a plausible height — the introspection step §II requires and
// incomplete IBC ports leave blank.
func (s *State) ValidateSelfClient(clientState []byte) error {
	info, err := guestlc.DecodeClientState(clientState)
	if err != nil {
		return fmt.Errorf("guest: self-client state: %w", err)
	}
	if uint64(info.Latest) > s.Height() {
		return fmt.Errorf("guest: self-client height %d ahead of chain %d", info.Latest, s.Height())
	}
	entry, err := s.Entry(uint64(info.Latest))
	if err != nil {
		return err
	}
	// The client's trusted epoch must be the one active at that height or
	// its successor (rotation block).
	ok := entry.Epoch.Commitment() == info.EpochCommitment
	if !ok && entry.Block.NextEpoch != nil {
		ok = entry.Block.NextEpoch.Commitment() == info.EpochCommitment
	}
	if !ok {
		return errors.New("guest: self-client tracks unknown validator set")
	}
	return nil
}

// ActiveStake returns the total stake of the current epoch.
func (s *State) ActiveStake() uint64 { return s.CurrentEpoch.TotalStake() }

// buildNextEpoch selects the top-staked candidates for the next epoch.
func (s *State) buildNextEpoch() (*guestblock.Epoch, error) {
	candidates := make([]*Candidate, 0, len(s.Candidates))
	for _, c := range s.Candidates {
		candidates = append(candidates, c)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Stake != candidates[j].Stake {
			return candidates[i].Stake > candidates[j].Stake
		}
		return candidates[i].PubKey.Compare(candidates[j].PubKey) < 0
	})
	if len(candidates) > s.Params.MaxValidators {
		candidates = candidates[:s.Params.MaxValidators]
	}
	vals := make([]guestblock.Validator, 0, len(candidates))
	for _, c := range candidates {
		vals = append(vals, guestblock.Validator{PubKey: c.PubKey, Stake: uint64(c.Stake)})
	}
	return guestblock.NewEpoch(s.CurrentEpoch.Index+1, vals)
}

// generateBlockCore is Alg. 1 GenerateBlock minus metering and events; it
// is shared by the contract instruction path and the direct (operator
// bootstrap) path.
func (s *State) generateBlockCore(now time.Time, slot uint64) (*BlockEntry, error) {
	head := s.Head()
	// Pipelining gate: up to PipelineDepth unfinalised blocks may trail
	// the finalised prefix (depth 1 = the paper's serialised behaviour).
	// An unfinalised epoch-rotation block always blocks generation — the
	// next block's signer set would otherwise be uncommitted.
	depth := s.Params.EffectivePipelineDepth()
	unfinalised := 0
	for i := len(s.Entries) - 1; i >= 0 && !s.Entries[i].Finalised; i-- {
		if s.Entries[i].Block.NextEpoch != nil {
			return nil, ErrHeadNotFinalised
		}
		unfinalised++
	}
	if unfinalised >= depth {
		return nil, ErrHeadNotFinalised
	}
	age := now.Sub(head.Block.Time)
	if head.Block.StateRoot == s.Store.Root() && age < s.Params.Delta {
		return nil, ErrNothingToCommit
	}

	block := &guestblock.Block{
		Height:          head.Block.Height + 1,
		HostHeight:      slot,
		Time:            now,
		PrevHash:        head.Block.Hash(),
		StateRoot:       s.Store.Root(),
		EpochIndex:      s.CurrentEpoch.Index,
		EpochCommitment: s.CurrentEpoch.Commitment(),
	}

	// Epoch rotation: once the minimum epoch length has elapsed, this
	// block carries the next validator set and is the epoch's last block.
	if slot-s.EpochStartSlot >= s.Params.EpochLength {
		next, err := s.buildNextEpoch()
		if err != nil {
			return nil, fmt.Errorf("guest: build next epoch: %w", err)
		}
		block.NextEpoch = next
	}

	entry := &BlockEntry{
		Block:      block,
		Epoch:      s.CurrentEpoch,
		Signatures: make(map[cryptoutil.PubKey]cryptoutil.Signature),
		Packets:    s.PendingPackets,
		CreatedAt:  now,
	}
	s.PendingPackets = nil
	s.Entries = append(s.Entries, entry)
	s.snapshots[block.Height] = s.Store.CommitAt(block.Height)
	s.pruneSnapshots()
	s.evictColdSnapshots(block.Height)

	if block.NextEpoch != nil {
		s.CurrentEpoch = block.NextEpoch
		s.EpochStartSlot = slot
	}
	return entry, nil
}

// applySignature records a verified validator vote and returns the block
// entries it newly finalised, in height order. With pipelining, a block may
// reach quorum before its parent; it then finalises only when the parent
// does (in-order cascade), so light-client updates stay sequential.
func (s *State) applySignature(entry *BlockEntry, pub cryptoutil.PubKey, sig cryptoutil.Signature, now time.Time) []*BlockEntry {
	entry.Signatures[pub] = sig
	entry.SignedStake += entry.Epoch.StakeOf(pub)
	done := s.cascadeFinalise(now)
	if len(done) > 0 && s.Store.Persistent() {
		// Finalised ⇒ durable: one group fsync covers every record the
		// finalised blocks' commits appended, so a crash can never roll
		// the chain back behind a finalised block.
		if err := s.Store.SyncBackend(); err != nil && s.persistErr == nil {
			s.persistErr = err
		}
	}
	return done
}

// PersistError returns the first persistence failure the finalisation
// path recorded, or nil. A non-nil value means durability is no longer
// guaranteed and the operator should treat the node as failed.
func (s *State) PersistError() error { return s.persistErr }

// evictColdSnapshots spills retained snapshots older than ColdRetention
// blocks to the persistent node store: their heap node pointers and value
// history are dropped, and historical reads fault back in from disk. The
// cursor makes the scan O(evicted), not O(retained).
func (s *State) evictColdSnapshots(height uint64) {
	cr := s.Params.ColdRetention
	if cr <= 0 || !s.Store.Persistent() {
		return
	}
	if s.coldCursor == 0 {
		s.coldCursor = 1
	}
	for h := s.coldCursor; h+uint64(cr) <= height; h++ {
		if v, ok := s.snapshots[h]; ok {
			s.Store.Evict(v)
		}
		s.coldCursor = h + 1
	}
}

// cascadeFinalise finalises, in height order, every tail entry whose quorum
// is reached and whose parent is finalised, returning the newly finalised
// entries. Entries always form a finalised prefix plus an unfinalised tail
// of at most PipelineDepth blocks, so the backward scan is O(depth).
func (s *State) cascadeFinalise(now time.Time) []*BlockEntry {
	first := len(s.Entries)
	for first > 0 && !s.Entries[first-1].Finalised {
		first--
	}
	var done []*BlockEntry
	for i := first; i < len(s.Entries); i++ {
		e := s.Entries[i]
		if e.SignedStake < e.Epoch.QuorumStake {
			break
		}
		e.Finalised = true
		e.FinalisedAt = now
		done = append(done, e)
	}
	return done
}

// DirectGenerateBlock mints a guest block outside a transaction (operator
// bootstrap, e.g. during the connection handshake). The caller must have
// called BeginDirect.
func (s *State) DirectGenerateBlock() (*BlockEntry, error) {
	return s.generateBlockCore(s.nowTime, s.nowSlot)
}

// DirectFinalise signs the entry with the given validator keys until the
// quorum is reached (operator bootstrap).
func (s *State) DirectFinalise(entry *BlockEntry, keys []*cryptoutil.PrivKey) error {
	payload := entry.Block.SigningPayload()
	for _, k := range keys {
		if entry.Finalised {
			return nil
		}
		if !entry.Epoch.Has(k.Public()) || s.Slashed[k.Public()] {
			continue
		}
		if _, dup := entry.Signatures[k.Public()]; dup {
			continue
		}
		s.applySignature(entry, k.Public(), k.SignHash(payload), s.nowTime)
	}
	if !entry.Finalised {
		return fmt.Errorf("guest: direct finalise: quorum not reached at height %d", entry.Block.Height)
	}
	return nil
}

// StorageNodeCount exposes trie occupancy for the §V-D experiments.
func (s *State) StorageNodeCount() int { return s.Store.Trie().NodeCount() }

// StorageBytes exposes the modelled storage footprint.
func (s *State) StorageBytes() int { return s.Store.Trie().StorageBytes() }

// pruneSnapshots releases store versions beyond the retention window, so
// the trie nodes and value history only they kept alive can be reclaimed.
func (s *State) pruneSnapshots() {
	if s.Params.SnapshotRetention <= 0 {
		return
	}
	if s.oldestSnapshot == 0 {
		s.oldestSnapshot = 1
	}
	for len(s.snapshots) > s.Params.SnapshotRetention {
		if v, ok := s.snapshots[s.oldestSnapshot]; ok {
			s.Store.Release(v)
			delete(s.snapshots, s.oldestSnapshot)
		}
		s.oldestSnapshot++
	}
}

// RetainedSnapshots returns how many historical store versions the state
// currently holds (telemetry).
func (s *State) RetainedSnapshots() int { return len(s.snapshots) }

// LatestFinalised returns the newest finalised block entry, or nil if none
// is finalised yet. Relayers fall back to it when a proof height has been
// pruned.
func (s *State) LatestFinalised() *BlockEntry {
	for i := len(s.Entries) - 1; i >= 0; i-- {
		if s.Entries[i].Finalised {
			return s.Entries[i]
		}
	}
	return nil
}
