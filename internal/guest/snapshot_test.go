package guest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/guestblock"
	"repro/internal/host"
	"repro/internal/ibc"
)

// newSnapshotEnv deploys a contract with a tiny snapshot retention window so
// pruning kicks in after a handful of blocks.
func newSnapshotEnv(t *testing.T, retention int) (*host.ManualClock, *host.Chain, *Contract, []*cryptoutil.PrivKey) {
	t.Helper()
	clock := host.NewManualClock(time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC))
	chain := host.NewChain(clock)
	payer := cryptoutil.GenerateKey("snap-payer").Public()
	chain.Fund(payer, 1_000_000*host.LamportsPerSOL)

	var keys []*cryptoutil.PrivKey
	var genesis []guestblock.Validator
	for i := 0; i < 3; i++ {
		k := cryptoutil.GenerateKeyIndexed("snap-val", i)
		keys = append(keys, k)
		chain.Fund(k.Public(), 2_000*host.LamportsPerSOL)
		genesis = append(genesis, guestblock.Validator{PubKey: k.Public(), Stake: uint64(100 * host.LamportsPerSOL)})
	}
	params := DefaultParams()
	params.Delta = time.Hour
	params.EpochLength = 100000
	params.SnapshotRetention = retention
	contract, _, err := Deploy(chain, Config{Params: params, Payer: payer, GenesisValidators: genesis})
	if err != nil {
		t.Fatal(err)
	}
	return clock, chain, contract, keys
}

// mintBlock dirties the store, generates a block directly, and finalises it.
func mintBlock(t *testing.T, clock *host.ManualClock, chain *host.Chain, contract *Contract, keys []*cryptoutil.PrivKey, tag string) *BlockEntry {
	t.Helper()
	st, err := contract.State(chain)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(host.SlotDuration)
	chain.ProduceBlock()
	st.BeginDirect(clock.Now(), uint64(chain.Slot()))
	if err := st.Store.Set("snap/"+tag, []byte(tag)); err != nil {
		t.Fatal(err)
	}
	entry, err := st.DirectGenerateBlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DirectFinalise(entry, keys); err != nil {
		t.Fatal(err)
	}
	return entry
}

func TestSnapshotPrunedVsUnknownHeight(t *testing.T) {
	clock, chain, contract, keys := newSnapshotEnv(t, 3)
	for i := 0; i < 8; i++ {
		mintBlock(t, clock, chain, contract, keys, fmt.Sprintf("b%d", i))
	}
	st, err := contract.State(chain)
	if err != nil {
		t.Fatal(err)
	}
	if st.RetainedSnapshots() != 3 {
		t.Fatalf("RetainedSnapshots = %d, want 3", st.RetainedSnapshots())
	}
	// Height 2 existed but fell out of the retention window.
	if _, err := st.SnapshotAt(2); !errors.Is(err, ErrSnapshotPruned) {
		t.Fatalf("SnapshotAt(pruned) = %v, want ErrSnapshotPruned", err)
	}
	if _, _, err := st.ProveMembershipAt(2, "snap/b0"); !errors.Is(err, ErrSnapshotPruned) {
		t.Fatalf("ProveMembershipAt(pruned) = %v, want ErrSnapshotPruned", err)
	}
	// A height the chain never reached is a different error.
	if _, err := st.SnapshotAt(1000); !errors.Is(err, ErrUnknownHeight) {
		t.Fatalf("SnapshotAt(future) = %v, want ErrUnknownHeight", err)
	}
	if _, err := st.ProveNonMembershipAt(1000, "snap/none"); !errors.Is(err, ErrUnknownHeight) {
		t.Fatalf("ProveNonMembershipAt(future) = %v, want ErrUnknownHeight", err)
	}
	// Height 0 is never valid either.
	if _, err := st.SnapshotAt(0); !errors.Is(err, ErrUnknownHeight) {
		t.Fatalf("SnapshotAt(0) = %v, want ErrUnknownHeight", err)
	}
	// The newest heights are still provable, and the proof verifies against
	// the block's finalised state root.
	head := st.Height()
	entry, err := st.Entry(head)
	if err != nil {
		t.Fatal(err)
	}
	value, proof, err := st.ProveMembershipAt(head, "snap/b0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(value, []byte("b0")) {
		t.Fatalf("value = %q, want b0", value)
	}
	if err := ibc.VerifyStoredMembership(entry.Block.StateRoot, "snap/b0", value, proof); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotsStayProvableAfterHeadMutation(t *testing.T) {
	// The versioned handles must keep serving the exact roots the blocks
	// committed, even as later blocks mutate the same paths.
	clock, chain, contract, keys := newSnapshotEnv(t, 16)
	st, err := contract.State(chain)
	if err != nil {
		t.Fatal(err)
	}
	type pin struct {
		height uint64
		root   cryptoutil.Hash
	}
	var pins []pin
	for i := 0; i < 6; i++ {
		// Overwrite the same path every block so versions genuinely differ.
		clock.Advance(host.SlotDuration)
		chain.ProduceBlock()
		st.BeginDirect(clock.Now(), uint64(chain.Slot()))
		if err := st.Store.Set("hot/path", []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
		entry, err := st.DirectGenerateBlock()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.DirectFinalise(entry, keys); err != nil {
			t.Fatal(err)
		}
		pins = append(pins, pin{height: entry.Block.Height, root: entry.Block.StateRoot})
	}
	for i, p := range pins {
		// The block's snapshot is taken at creation, after that round's
		// write, so height pins[i] holds generation i.
		value, proof, err := st.ProveMembershipAt(p.height, "hot/path")
		if err != nil {
			t.Fatalf("height %d: %v", p.height, err)
		}
		want := fmt.Sprintf("gen%d", i)
		if !bytes.Equal(value, []byte(want)) {
			t.Fatalf("height %d value = %q, want %q", p.height, value, want)
		}
		if err := ibc.VerifyStoredMembership(p.root, "hot/path", value, proof); err != nil {
			t.Fatalf("height %d: %v", p.height, err)
		}
	}
	// Snapshot handles mirror the store's retained version count.
	if st.RetainedSnapshots() != st.Store.RetainedVersions() {
		t.Fatalf("RetainedSnapshots %d != store RetainedVersions %d",
			st.RetainedSnapshots(), st.Store.RetainedVersions())
	}
}

func TestLatestFinalised(t *testing.T) {
	clock, chain, contract, keys := newSnapshotEnv(t, 8)
	st, err := contract.State(chain)
	if err != nil {
		t.Fatal(err)
	}
	if lf := st.LatestFinalised(); lf == nil || lf.Block.Height != 1 {
		t.Fatalf("genesis LatestFinalised = %+v", lf)
	}
	mintBlock(t, clock, chain, contract, keys, "lf")
	if lf := st.LatestFinalised(); lf == nil || lf.Block.Height != 2 {
		t.Fatal("LatestFinalised did not advance")
	}
	// An unfinalised head is skipped.
	clock.Advance(host.SlotDuration)
	chain.ProduceBlock()
	st.BeginDirect(clock.Now(), uint64(chain.Slot()))
	if err := st.Store.Set("snap/unfin", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.DirectGenerateBlock(); err != nil {
		t.Fatal(err)
	}
	if lf := st.LatestFinalised(); lf == nil || lf.Block.Height != 2 {
		t.Fatalf("LatestFinalised = %+v, want height 2 (head unfinalised)", lf)
	}
}
