package guest

import (
	"repro/internal/cryptoutil"
	"repro/internal/host"
	"repro/internal/ibc"
)

// Event payload types emitted by the Guest Contract into the host event
// log. Off-chain daemons (validators, relayers, fishermen) consume these.

// EventClientUpdated reports a committed light-client update and how many
// host transactions the chunked upload took (the Fig. 4 statistic).
type EventClientUpdated struct {
	ClientID ibc.ClientID
	Height   ibc.Height
	Txs      int
}

// EventPacketDelivered reports an incoming packet delivered to its
// destination application with the acknowledgement that was committed.
type EventPacketDelivered struct {
	Packet *ibc.Packet
	Ack    []byte
}

// EventSigned reports an accepted validator signature.
type EventSigned struct {
	Height uint64
	PubKey cryptoutil.PubKey
}

// EventValidatorSlashed reports a slashing caused by fisherman evidence.
type EventValidatorSlashed struct {
	Validator cryptoutil.PubKey
	Kind      byte
	Stake     host.Lamports
}
