package guest

import (
	"repro/internal/cryptoutil"
	"repro/internal/guestblock"
	"repro/internal/host"
	"repro/internal/ibc"
)

// Event payload types emitted by the Guest Contract into the host event
// log. Off-chain daemons (validators, relayers, fishermen) consume these by
// type-switching on host.Event.Payload; each implements telemetry.Event.

// EventPacketQueued reports an outgoing packet committed and waiting to
// ride in the next guest block.
type EventPacketQueued struct {
	Packet *ibc.Packet
}

// EventKind implements telemetry.Event.
func (EventPacketQueued) EventKind() string { return "PacketQueued" }

// EventNewBlock reports a freshly minted (not yet finalised) guest block.
type EventNewBlock struct {
	Block *guestblock.Block
}

// EventKind implements telemetry.Event.
func (EventNewBlock) EventKind() string { return "NewBlock" }

// EventFinalisedBlock reports a guest block reaching quorum finality.
type EventFinalisedBlock struct {
	Entry *BlockEntry
}

// EventKind implements telemetry.Event.
func (EventFinalisedBlock) EventKind() string { return "FinalisedBlock" }

// EventClientUpdated reports a committed light-client update and how many
// host transactions the chunked upload took (the Fig. 4 statistic).
type EventClientUpdated struct {
	ClientID ibc.ClientID
	Height   ibc.Height
	Txs      int
}

// EventKind implements telemetry.Event.
func (EventClientUpdated) EventKind() string { return "ClientUpdated" }

// EventPacketDelivered reports an incoming packet delivered to its
// destination application with the acknowledgement that was committed.
type EventPacketDelivered struct {
	Packet *ibc.Packet
	Ack    []byte
}

// EventKind implements telemetry.Event.
func (EventPacketDelivered) EventKind() string { return "PacketDelivered" }

// EventPacketAcked reports the acknowledgement for a guest-sent packet
// landing back on the guest chain.
type EventPacketAcked struct {
	Packet *ibc.Packet
}

// EventKind implements telemetry.Event.
func (EventPacketAcked) EventKind() string { return "PacketAcked" }

// EventPacketTimedOut reports a guest-sent packet proven undelivered past
// its timeout.
type EventPacketTimedOut struct {
	Packet *ibc.Packet
}

// EventKind implements telemetry.Event.
func (EventPacketTimedOut) EventKind() string { return "PacketTimedOut" }

// EventSigned reports an accepted validator signature.
type EventSigned struct {
	Height uint64
	PubKey cryptoutil.PubKey
}

// EventKind implements telemetry.Event.
func (EventSigned) EventKind() string { return "Signed" }

// EventStaked reports new candidate stake.
type EventStaked struct {
	Validator cryptoutil.PubKey
}

// EventKind implements telemetry.Event.
func (EventStaked) EventKind() string { return "Staked" }

// EventUnstaked reports a candidate starting its unbonding exit.
type EventUnstaked struct {
	Validator cryptoutil.PubKey
}

// EventKind implements telemetry.Event.
func (EventUnstaked) EventKind() string { return "Unstaked" }

// EventWithdrawn reports matured stake paid out to its owner.
type EventWithdrawn struct {
	Owner cryptoutil.PubKey
}

// EventKind implements telemetry.Event.
func (EventWithdrawn) EventKind() string { return "Withdrawn" }

// EventEmergencyRelease reports the §VI-A dead-chain payout.
type EventEmergencyRelease struct {
	Released host.Lamports
}

// EventKind implements telemetry.Event.
func (EventEmergencyRelease) EventKind() string { return "EmergencyRelease" }

// EventValidatorSlashed reports a slashing caused by fisherman evidence.
type EventValidatorSlashed struct {
	Validator cryptoutil.PubKey
	Kind      byte
	Stake     host.Lamports
}

// EventKind implements telemetry.Event.
func (EventValidatorSlashed) EventKind() string { return "ValidatorSlashed" }
