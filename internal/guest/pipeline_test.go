package guest

import (
	"errors"
	"testing"

)

// newPipelinedEnv is newEnv with a PipelineDepth override.
func newPipelinedEnv(t *testing.T, validators, depth int) *env {
	t.Helper()
	e := newEnv(t, validators)
	st := e.state()
	st.Params.PipelineDepth = depth
	return e
}

// generate submits a GenerateBlock crank and returns the execution error.
func (e *env) generate() error {
	builder := NewTxBuilder(e.contract, e.payer)
	return e.submitExpectErr(builder.GenerateBlockTx())
}

func TestPipelineDepthOneMatchesLegacyGate(t *testing.T) {
	e := newEnv(t, 3) // depth unset = 1
	e.dirtyState("a")
	if err := e.generate(); err != nil {
		t.Fatal(err)
	}
	// Head unfinalised: a second generate must be refused, as before.
	e.dirtyState("b")
	if err := e.generate(); !errors.Is(err, ErrHeadNotFinalised) {
		t.Fatalf("second generate: err = %v, want ErrHeadNotFinalised", err)
	}
}

func TestPipelineAllowsUnfinalisedTail(t *testing.T) {
	e := newPipelinedEnv(t, 3, 3)
	for i := 0; i < 3; i++ {
		e.dirtyState(string(rune('a' + i)))
		if err := e.generate(); err != nil {
			t.Fatalf("generate %d (tail %d unfinalised): %v", i, i, err)
		}
	}
	st := e.state()
	if h := st.Height(); h != 4 { // genesis + 3
		t.Fatalf("height = %d, want 4", h)
	}
	// Tail is full: the 4th generate is refused.
	e.dirtyState("d")
	if err := e.generate(); !errors.Is(err, ErrHeadNotFinalised) {
		t.Fatalf("generate past depth: err = %v, want ErrHeadNotFinalised", err)
	}
}

func TestPipelineCascadeFinalisesInOrder(t *testing.T) {
	e := newPipelinedEnv(t, 3, 3)
	for i := 0; i < 3; i++ {
		e.dirtyState(string(rune('a' + i)))
		if err := e.generate(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.state()
	// Heights 2,3,4 are unfinalised. Bring heights 3 and 4 to quorum
	// first: they must NOT finalise while their parent (2) is pending.
	signAll := func(height uint64) {
		entry, err := st.Entry(height)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range e.keys {
			builder := NewTxBuilder(e.contract, k.Public())
			e.submit(builder.SignTx(k, entry.Block))
		}
	}
	signAll(3)
	signAll(4)
	st = e.state()
	for _, h := range []uint64{3, 4} {
		entry, _ := st.Entry(h)
		if entry.Finalised {
			t.Fatalf("height %d finalised before its parent", h)
		}
		if entry.SignedStake < entry.Epoch.QuorumStake {
			t.Fatalf("height %d did not reach quorum", h)
		}
	}

	// Collect finalisation events while signing height 2: its quorum must
	// cascade-finalise 3 and 4 in height order within the same vote.
	cursor := e.chain.Slot()
	signAll(2)
	var finalised []uint64
	for _, b := range e.chain.BlocksSince(cursor) {
		for _, ev := range b.Events {
			if fe, ok := ev.Payload.(EventFinalisedBlock); ok {
				finalised = append(finalised, fe.Entry.Block.Height)
			}
		}
	}
	want := []uint64{2, 3, 4}
	if len(finalised) != len(want) {
		t.Fatalf("finalised events = %v, want %v", finalised, want)
	}
	for i := range want {
		if finalised[i] != want[i] {
			t.Fatalf("finalised events = %v, want %v (in height order)", finalised, want)
		}
	}
	st = e.state()
	for _, h := range want {
		entry, _ := st.Entry(h)
		if !entry.Finalised {
			t.Fatalf("height %d not finalised after cascade", h)
		}
	}
	// The tail is clear again: generation proceeds.
	e.dirtyState("e")
	if err := e.generate(); err != nil {
		t.Fatalf("generate after cascade: %v", err)
	}
}

func TestPipelineBlocksOnPendingEpochRotation(t *testing.T) {
	e := newPipelinedEnv(t, 3, 3)
	st := e.state()
	// Force the next block to carry an epoch rotation.
	st.Params.EpochLength = 1
	e.dirtyState("a")
	if err := e.generate(); err != nil {
		t.Fatal(err)
	}
	st = e.state()
	head := st.Head()
	if head.Block.NextEpoch == nil {
		t.Fatal("expected rotation block")
	}
	// Despite depth 3, generation must wait for the rotation block.
	e.dirtyState("b")
	if err := e.generate(); !errors.Is(err, ErrHeadNotFinalised) {
		t.Fatalf("generate past pending rotation: err = %v, want ErrHeadNotFinalised", err)
	}
}

// TestPipelineSignedBlocksStayVerifiable checks that cascade-finalised
// blocks still assemble light-client-verifiable signed blocks.
func TestPipelineSignedBlocksStayVerifiable(t *testing.T) {
	e := newPipelinedEnv(t, 4, 2)
	for i := 0; i < 2; i++ {
		e.dirtyState(string(rune('a' + i)))
		if err := e.generate(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.state()
	for h := uint64(2); h <= 3; h++ {
		entry, _ := st.Entry(h)
		for _, k := range e.keys {
			builder := NewTxBuilder(e.contract, k.Public())
			e.submit(builder.SignTx(k, entry.Block))
		}
	}
	st = e.state()
	for h := uint64(2); h <= 3; h++ {
		entry, _ := st.Entry(h)
		if !entry.Finalised {
			t.Fatalf("height %d not finalised", h)
		}
		sb := entry.SignedBlock()
		if err := sb.VerifyQuorum(entry.Epoch); err != nil {
			t.Fatalf("height %d signed block: %v", h, err)
		}
	}
}
