// Package guest implements the paper's primary contribution: the Guest
// Contract (§III) — a smart contract on the host chain that emulates a
// complete IBC-capable blockchain. It maintains provable storage in a
// sealable Merkle trie, produces guest blocks, finalises them through a
// Proof-of-Stake quorum of staked validators, and bridges IBC packets
// between the host chain and IBC counterparties (Alg. 1).
package guest

import (
	"time"

	"repro/internal/host"
)

// Params are the guest blockchain's governance parameters. The defaults
// mirror the paper's mainnet deployment (§IV).
type Params struct {
	// Delta is the maximum age of the chain head before an empty block is
	// generated, needed to keep IBC timeouts observable (§III-A). The
	// deployment used 1 hour.
	Delta time.Duration
	// EpochLength is the minimum epoch length in host slots; the
	// deployment used 100_000 (~12 hours).
	EpochLength uint64
	// MaxValidators caps the validator set: the top-staked candidates are
	// selected each epoch (§III-B).
	MaxValidators int
	// MinStake is the minimum candidate stake.
	MinStake host.Lamports
	// UnbondingPeriod is how long stake stays locked after exit; the
	// deployment used one week.
	UnbondingPeriod time.Duration
	// PacketFee is the contract-level fee collected per sent packet
	// (Alg. 1 collect_fees).
	PacketFee host.Lamports
	// StateSize is the provable-storage account size in bytes; the
	// deployment allocated the 10 MiB Solana maximum (§V-D).
	StateSize int
	// SnapshotRetention is how many recent per-block state snapshots the
	// off-chain RPC layer keeps for proof generation.
	SnapshotRetention int
	// ColdRetention is how many recent snapshots stay fully materialised
	// on the heap when a persistent node store is attached: snapshots
	// older than this many blocks are evicted to the store and fault
	// their nodes back in on demand, so retained history stops pinning
	// heap. 0 disables eviction; ignored without a persistent store.
	ColdRetention int
	// EmergencyTimeout implements the §VI-A mitigation for the "last
	// validator wishing to quit" problem: once no guest block has been
	// generated for this long, the chain is considered dead and anyone
	// may trigger the release of all staked assets to their owners,
	// bypassing the unbonding period. 0 disables the mechanism.
	EmergencyTimeout time.Duration
	// PipelineDepth is how many unfinalised guest blocks may trail the
	// finalised prefix. The paper's deployment serialises generation and
	// finalisation (depth 1, the default); raising it lets block minting,
	// signature collection, and relaying overlap under open-loop load.
	// Blocks still finalise strictly in height order, so light-client
	// updates remain sequential. 0 behaves like 1.
	PipelineDepth int
}

// EffectivePipelineDepth returns PipelineDepth clamped to at least 1.
func (p Params) EffectivePipelineDepth() int {
	if p.PipelineDepth < 1 {
		return 1
	}
	return p.PipelineDepth
}

// DefaultParams returns the deployment configuration from §IV.
func DefaultParams() Params {
	return Params{
		Delta:             time.Hour,
		EpochLength:       100_000,
		MaxValidators:     24,
		MinStake:          host.LamportsPerSOL, // 1 SOL
		UnbondingPeriod:   7 * 24 * time.Hour,
		PacketFee:         10_000,
		StateSize:         host.MaxAccountSize,
		SnapshotRetention: 256,
		EmergencyTimeout:  30 * 24 * time.Hour,
	}
}
