package guest

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/guestblock"
	"repro/internal/host"
	"repro/internal/ibc"
	"repro/internal/nodestore"
	"repro/internal/telemetry"
	"repro/internal/trie"
	"repro/internal/wire"
)

// payloadForHash aliases the guestblock helper for local use.
func payloadForHash(h cryptoutil.Hash) cryptoutil.Hash {
	return guestblock.SigningPayloadForHash(h)
}

// Contract is the Guest Contract program deployed on the host chain. Its
// mutable state lives in a host account (State); the Contract value itself
// only routes instructions.
type Contract struct {
	programID host.ProgramID
	stateKey  cryptoutil.PubKey
}

var _ host.Program = (*Contract)(nil)

// Config parameterises deployment.
type Config struct {
	Params Params
	// Payer funds the rent-exempt state account deposit.
	Payer cryptoutil.PubKey
	// GenesisValidators bootstrap epoch 0 with their stakes (the paper's
	// deployment started with one operator validator; others staked in).
	GenesisValidators []guestblock.Validator
	// Telemetry, when set, registers the embedded IBC handler's metrics
	// (under "guest.ibc.") in the given registry.
	Telemetry *telemetry.Registry
	// NodeStore, when set, persists the provable store through the given
	// backend: commits append to its log, finalisation group-fsyncs it,
	// and a backend reopened after a crash resumes the state from the
	// last finalised root instead of re-syncing from genesis. nil keeps
	// the store purely in-heap (byte-identical legacy behaviour).
	NodeStore nodestore.Store
}

// Deploy registers the Guest Contract on the chain, allocates its provable
// state account (the 10 MiB deposit of §V-D), and creates the genesis
// block. It returns the contract handle and the deposit charged.
func Deploy(chain *host.Chain, cfg Config) (*Contract, host.Lamports, error) {
	if len(cfg.GenesisValidators) == 0 {
		return nil, 0, errors.New("guest: need at least one genesis validator")
	}
	epoch, err := guestblock.NewEpoch(0, cfg.GenesisValidators)
	if err != nil {
		return nil, 0, err
	}

	c := &Contract{
		programID: cryptoutil.GenerateKey("guest-contract-program").Public(),
		stateKey:  cryptoutil.GenerateKey("guest-contract-state").Public(),
	}

	store, err := ibc.NewStoreWithBackend(cfg.NodeStore, trie.WithCapacityBytes(cfg.Params.StateSize))
	if err != nil {
		return nil, 0, fmt.Errorf("guest: open provable store: %w", err)
	}
	st := &State{
		Params:       cfg.Params,
		Account:      c.stateKey,
		Store:        store,
		CurrentEpoch: epoch,
		Candidates:   make(map[cryptoutil.PubKey]*Candidate),
		Slashed:      make(map[cryptoutil.PubKey]bool),
		staging:      make(map[stagingKey]*StagingBuffer),
		snapshots:    make(map[uint64]ibc.Version),
		nowTime:      chain.Now(),
		nowSlot:      uint64(chain.Slot()),
	}
	st.Handler = ibc.NewHandler(store, st,
		ibc.WithSealedReceipts(),
		ibc.WithTelemetry(cfg.Telemetry),
		ibc.WithMetricsNamespace("guest.ibc"),
	)
	// Buffer the handler's typed events; Execute flushes them to the host
	// event log only if the instruction succeeds (atomicity).
	st.Handler.Events().Subscribe(func(ev telemetry.Event) {
		st.ibcEvents = append(st.ibcEvents, ev)
	})
	for _, v := range cfg.GenesisValidators {
		st.Candidates[v.PubKey] = &Candidate{PubKey: v.PubKey, Owner: v.PubKey, Stake: host.Lamports(v.Stake)}
	}

	genesis := &guestblock.Block{
		Height:          1,
		HostHeight:      uint64(chain.Slot()),
		Time:            chain.Now(),
		StateRoot:       store.Root(),
		EpochIndex:      epoch.Index,
		EpochCommitment: epoch.Commitment(),
	}
	st.Entries = append(st.Entries, &BlockEntry{
		Block:      genesis,
		Epoch:      epoch,
		Signatures: make(map[cryptoutil.PubKey]cryptoutil.Signature),
		Finalised:  true,
		CreatedAt:  chain.Now(),
	})
	st.snapshots[1] = store.Commit()

	deposit, err := chain.CreateStateAccount(cfg.Payer, c.stateKey, c.programID, cfg.Params.StateSize, st)
	if err != nil {
		return nil, 0, fmt.Errorf("guest: allocate state account: %w", err)
	}
	// Escrow the genesis validators' stakes into the contract account so
	// slashing and withdrawals are backed by real lamports.
	for _, v := range cfg.GenesisValidators {
		if err := chain.MoveLamports(v.PubKey, c.stateKey, host.Lamports(v.Stake)); err != nil {
			return nil, 0, fmt.Errorf("guest: escrow genesis stake: %w", err)
		}
	}
	chain.RegisterProgram(c)
	return c, deposit, nil
}

// ID implements host.Program.
func (c *Contract) ID() host.ProgramID { return c.programID }

// StateKey returns the contract's state account address.
func (c *Contract) StateKey() cryptoutil.PubKey { return c.stateKey }

// State fetches the live contract state from the chain (off-chain read
// API, the RPC analogue).
func (c *Contract) State(chain *host.Chain) (*State, error) {
	raw, err := chain.StateOf(c.stateKey)
	if err != nil {
		return nil, err
	}
	st, ok := raw.(*State)
	if !ok {
		return nil, errors.New("guest: state account holds foreign state")
	}
	return st, nil
}

// BindPort registers an IBC application module on the guest blockchain's
// handler (deployment-time wiring, like program upgrades on the host).
func (c *Contract) BindPort(chain *host.Chain, port ibc.PortID, m ibc.Module) error {
	st, err := c.State(chain)
	if err != nil {
		return err
	}
	return st.Handler.BindPort(port, m)
}

// Execute implements host.Program: it dispatches one instruction.
func (c *Contract) Execute(ctx *host.ExecContext, ins host.Instruction) error {
	acc, err := ctx.Account(c.stateKey)
	if err != nil {
		return err
	}
	st, ok := acc.State.(*State)
	if !ok {
		return errors.New("guest: state account holds foreign state")
	}
	if len(ins.Data) == 0 {
		return errors.New("guest: empty instruction")
	}
	st.nowTime = ctx.Time
	st.nowSlot = uint64(ctx.Slot)
	st.ibcEvents = nil
	// Expose the live compute meter for the duration of the instruction,
	// so middleware callback budgets charge through it.
	st.execMeter = ctx.Meter
	defer func() { st.execMeter = nil }()

	op := ins.Data[0]
	if st.Halted && op != OpWithdraw {
		return ErrHalted
	}
	r := wire.NewReader(ins.Data[1:])
	switch op {
	case OpSendPacket:
		err = c.sendPacket(ctx, st, r)
	case OpGenerateBlock:
		if e := r.Done(); e != nil {
			return e
		}
		err = c.generateBlock(ctx, st)
	case OpSign:
		err = c.sign(ctx, st, r)
	case OpStake:
		err = c.stake(ctx, st, r)
	case OpUnstake:
		err = c.unstake(ctx, st, r)
	case OpWithdraw:
		if e := r.Done(); e != nil {
			return e
		}
		err = c.withdraw(ctx, st)
	case OpChunk:
		err = c.chunk(ctx, st, r)
	case OpCommitUpdateClient:
		err = c.commitUpdateClient(ctx, st, r)
	case OpCommitRecvPacket:
		err = c.commitRecvPacket(ctx, st, r)
	case OpCommitAck:
		err = c.commitAck(ctx, st, r)
	case OpCommitTimeout:
		err = c.commitTimeout(ctx, st, r)
	case OpSubmitMisbehaviour:
		err = c.submitMisbehaviour(ctx, st, r)
	case OpEmergencyRelease:
		if e := r.Done(); e != nil {
			return e
		}
		err = c.emergencyRelease(ctx, st)
	default:
		return fmt.Errorf("guest: unknown opcode %d", op)
	}
	if err != nil {
		return err
	}
	// Forward buffered IBC events to the host event log.
	for _, e := range st.ibcEvents {
		ctx.Emit(e)
	}
	st.ibcEvents = nil
	return nil
}

// sendPacket implements Alg. 1 SendPacket: collect fees, assign sequence,
// commit the packet.
func (c *Contract) sendPacket(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeSendPacket(r)
	if err != nil {
		return err
	}
	if !ctx.IsSigner(a.Sender) {
		return fmt.Errorf("guest: sender %s did not sign", a.Sender.Short())
	}
	if err := ctx.Meter.Consume(host.CUPerTrieNode * 8); err != nil {
		return err
	}
	if err := ctx.Meter.ConsumeHash(len(a.Data)); err != nil {
		return err
	}
	// collect_fees(payload)
	if err := ctx.Transfer(a.Sender, st.Account, st.Params.PacketFee); err != nil {
		return fmt.Errorf("guest: collect fees: %w", err)
	}
	st.TotalFeesCollected += st.Params.PacketFee

	// Sends thread the port's middleware stack (fees, callbacks, ...)
	// before the core handler commits the packet.
	p, err := st.Handler.AppSendPacket(a.Port, a.Channel, a.Data, a.TimeoutHeight, a.TimeoutTimestamp)
	if err != nil {
		return err
	}
	st.PendingPackets = append(st.PendingPackets, p)
	ctx.Emit(EventPacketQueued{Packet: p})
	return nil
}

// PacketSender returns the guest blockchain's chain-level send entry
// point: packets sent through it thread the destination port's middleware
// stack AND join the pending list of the next guest block, so they become
// relayable exactly like application sends. Forwarding middleware uses it
// for onward hops (it must run inside an executing instruction, where the
// re-send rides the enclosing recv transaction).
func (c *Contract) PacketSender(chain *host.Chain) (*GuestPacketSender, error) {
	st, err := c.State(chain)
	if err != nil {
		return nil, err
	}
	return &GuestPacketSender{st: st}, nil
}

// GuestPacketSender implements ibc.PacketSender over the guest contract
// state (see Contract.PacketSender).
type GuestPacketSender struct {
	st *State
}

// SendPacket implements ibc.PacketSender.
func (g *GuestPacketSender) SendPacket(port ibc.PortID, ch ibc.ChannelID, data []byte, th ibc.Height, tt time.Time) (*ibc.Packet, error) {
	p, err := g.st.Handler.AppSendPacket(port, ch, data, th, tt)
	if err != nil {
		return nil, err
	}
	g.st.PendingPackets = append(g.st.PendingPackets, p)
	return p, nil
}

// generateBlock implements Alg. 1 GenerateBlock.
func (c *Contract) generateBlock(ctx *host.ExecContext, st *State) error {
	if err := ctx.Meter.Consume(host.CUPerTrieNode * 4); err != nil {
		return err
	}
	entry, err := st.generateBlockCore(ctx.Time, uint64(ctx.Slot))
	if err != nil {
		return err
	}
	ctx.Emit(EventNewBlock{Block: entry.Block})
	return nil
}

// sign implements Alg. 1 Sign: record a validator's vote; finalise on
// quorum.
func (c *Contract) sign(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeSign(r)
	if err != nil {
		return err
	}
	entry, err := st.Entry(a.Height)
	if err != nil {
		return err
	}
	if st.Slashed[a.PubKey] {
		return ErrSlashedValidator
	}
	if !entry.Epoch.Has(a.PubKey) {
		return fmt.Errorf("%w: %s (epoch %d)", ErrNotValidator, a.PubKey.Short(), entry.Epoch.Index)
	}
	if _, dup := entry.Signatures[a.PubKey]; dup {
		return fmt.Errorf("%w: %s at height %d", ErrAlreadySigned, a.PubKey.Short(), a.Height)
	}
	// check_signature: the heavy Ed25519 verification ran in the runtime
	// precompile (§IV workaround); the contract checks the claim.
	payload := entry.Block.SigningPayload()
	if !ctx.PrecompileVerified(a.PubKey, payload[:]) {
		return ErrBadSignature
	}
	if err := ctx.Meter.Consume(host.CUBaseInstruction); err != nil {
		return err
	}

	finalised := st.applySignature(entry, a.PubKey, a.Signature, ctx.Time)
	ctx.Emit(EventSigned{Height: a.Height, PubKey: a.PubKey})
	// With pipelining a vote can finalise a run of blocks at once (a
	// parent reaching quorum releases children that already had theirs);
	// emit one event per block, in height order.
	for _, e := range finalised {
		ctx.Emit(EventFinalisedBlock{Entry: e})
	}
	return nil
}

// stake adds candidate stake from the signing owner.
func (c *Contract) stake(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeStake(r)
	if err != nil {
		return err
	}
	amount := host.Lamports(a.Amount)
	if amount < st.Params.MinStake {
		return fmt.Errorf("%w: %d < %d", ErrStakeTooSmall, amount, st.Params.MinStake)
	}
	if st.Slashed[a.Validator] {
		return ErrSlashedValidator
	}
	owner := ctx.FeePayer()
	if err := ctx.Transfer(owner, st.Account, amount); err != nil {
		return err
	}
	if cand, ok := st.Candidates[a.Validator]; ok {
		if cand.Owner != owner {
			return fmt.Errorf("guest: validator %s is owned by another account", a.Validator.Short())
		}
		cand.Stake += amount
	} else {
		st.Candidates[a.Validator] = &Candidate{PubKey: a.Validator, Owner: owner, Stake: amount}
	}
	ctx.Emit(EventStaked{Validator: a.Validator})
	return nil
}

// unstake begins a candidate's exit; stake unlocks after the unbonding
// period (the "stake held for one week after exit" rule of §IV).
func (c *Contract) unstake(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	pub := r.PubKey()
	if err := r.Done(); err != nil {
		return err
	}
	cand, ok := st.Candidates[pub]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCandidate, pub.Short())
	}
	if cand.Owner != ctx.FeePayer() {
		return fmt.Errorf("guest: only the staking owner may unstake %s", pub.Short())
	}
	delete(st.Candidates, pub)
	st.Withdrawals = append(st.Withdrawals, Withdrawal{
		PubKey:      pub,
		Owner:       cand.Owner,
		Amount:      cand.Stake,
		AvailableAt: ctx.Time.Add(st.Params.UnbondingPeriod),
	})
	ctx.Emit(EventUnstaked{Validator: pub})
	return nil
}

// withdraw pays out the fee payer's matured withdrawals.
func (c *Contract) withdraw(ctx *host.ExecContext, st *State) error {
	owner := ctx.FeePayer()
	var kept []Withdrawal
	var paid host.Lamports
	for _, wd := range st.Withdrawals {
		if wd.Owner == owner && !ctx.Time.Before(wd.AvailableAt) {
			paid += wd.Amount
			continue
		}
		kept = append(kept, wd)
	}
	if paid == 0 {
		return ErrNothingToWithdraw
	}
	if err := ctx.Debit(st.Account, paid); err != nil {
		return err
	}
	ctx.Credit(owner, paid)
	st.Withdrawals = kept
	ctx.Emit(EventWithdrawn{Owner: owner})
	return nil
}

// chunk appends data to the fee payer's staging buffer and records
// runtime-verified signature claims.
func (c *Contract) chunk(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeChunk(r)
	if err != nil {
		return err
	}
	if err := ctx.Heap.Alloc(len(a.Data)); err != nil {
		return err
	}
	if err := ctx.Meter.Consume(uint64(len(a.Data)) * host.CUPerByteWritten); err != nil {
		return err
	}
	key := stagingKey{owner: ctx.FeePayer(), id: a.BufferID}
	buf, ok := st.staging[key]
	if !ok {
		buf = &StagingBuffer{VerifiedSigs: make(map[cryptoutil.Hash]bool)}
		st.staging[key] = buf
	}
	buf.Data = append(buf.Data, a.Data...)
	buf.Txs++
	for _, claim := range a.SigClaims {
		if !ctx.PrecompileVerified(claim.Pub, claim.Payload) {
			return fmt.Errorf("%w: claim for %s", ErrBadSignature, claim.Pub.Short())
		}
		buf.VerifiedSigs[sigDigest(claim.Pub, claim.Payload)] = true
	}
	return nil
}

// takeBuffer removes and returns the fee payer's staging buffer.
func (c *Contract) takeBuffer(ctx *host.ExecContext, st *State, id uint64) (*StagingBuffer, error) {
	key := stagingKey{owner: ctx.FeePayer(), id: id}
	buf, ok := st.staging[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBuffer, id)
	}
	delete(st.staging, key)
	return buf, nil
}

// commitUpdateClient applies a staged light-client update. Signature
// verification was performed by the runtime across the chunk transactions;
// the client re-runs every non-signature check.
func (c *Contract) commitUpdateClient(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeCommit(r)
	if err != nil {
		return err
	}
	buf, err := c.takeBuffer(ctx, st, a.BufferID)
	if err != nil {
		return err
	}
	payload, err := UnmarshalUpdateClientPayload(buf.Data)
	if err != nil {
		return err
	}
	if err := ctx.Meter.ConsumeHash(len(payload.Header)); err != nil {
		return err
	}
	client, err := st.Handler.Client(a.ClientID)
	if err != nil {
		return err
	}
	if err := updateClientPresigned(client, payload.Header, ctx.Time, buf); err != nil {
		return err
	}
	buf.Txs++ // the commit transaction itself
	ctx.Emit(EventClientUpdated{
		ClientID: a.ClientID,
		Height:   client.LatestHeight(),
		Txs:      buf.Txs,
	})
	return nil
}

// commitRecvPacket applies a staged incoming packet (Alg. 1
// ReceivePacket): verify the proof, reject duplicates, deliver to the
// destination application on the host.
func (c *Contract) commitRecvPacket(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeCommit(r)
	if err != nil {
		return err
	}
	buf, err := c.takeBuffer(ctx, st, a.BufferID)
	if err != nil {
		return err
	}
	payload, err := UnmarshalRecvPayload(buf.Data)
	if err != nil {
		return err
	}
	if err := ctx.Meter.ConsumeHash(len(payload.Proof)); err != nil {
		return err
	}
	if err := ctx.Meter.Consume(host.CUPerTrieNode * uint64(1+len(payload.Proof)/64)); err != nil {
		return err
	}
	ack, err := st.Handler.RecvPacket(payload.Packet, payload.Proof, payload.ProofHeight)
	if err != nil {
		return err
	}
	ctx.Emit(EventPacketDelivered{Packet: payload.Packet, Ack: ack})
	return nil
}

// commitAck applies a staged acknowledgement for a packet the guest sent.
func (c *Contract) commitAck(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeCommit(r)
	if err != nil {
		return err
	}
	buf, err := c.takeBuffer(ctx, st, a.BufferID)
	if err != nil {
		return err
	}
	payload, err := UnmarshalAckPayload(buf.Data)
	if err != nil {
		return err
	}
	if err := ctx.Meter.ConsumeHash(len(payload.Proof)); err != nil {
		return err
	}
	if err := st.Handler.AcknowledgePacket(payload.Packet, payload.Ack, payload.Proof, payload.ProofHeight); err != nil {
		return err
	}
	ctx.Emit(EventPacketAcked{Packet: payload.Packet})
	return nil
}

// commitTimeout applies a staged timeout proof for a packet the guest
// sent.
func (c *Contract) commitTimeout(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	a, err := decodeCommit(r)
	if err != nil {
		return err
	}
	buf, err := c.takeBuffer(ctx, st, a.BufferID)
	if err != nil {
		return err
	}
	payload, err := UnmarshalTimeoutPayload(buf.Data)
	if err != nil {
		return err
	}
	if err := ctx.Meter.ConsumeHash(len(payload.Proof)); err != nil {
		return err
	}
	if err := st.Handler.TimeoutPacket(payload.Packet, payload.Proof, payload.ProofHeight); err != nil {
		return err
	}
	ctx.Emit(EventPacketTimedOut{Packet: payload.Packet})
	return nil
}

// emergencyRelease implements the §VI-A self-destruction mitigation: if no
// guest block has been generated for EmergencyTimeout, the chain is dead —
// without this, validators could never recover their stake once the
// validator set fell below quorum ("last validator wishing to quit"). Any
// caller may trigger it; all candidate stakes and pending withdrawals are
// paid out immediately and the contract halts.
func (c *Contract) emergencyRelease(ctx *host.ExecContext, st *State) error {
	if st.Params.EmergencyTimeout <= 0 {
		return fmt.Errorf("%w: emergency release disabled", ErrNotDead)
	}
	dead := ctx.Time.Sub(st.Head().Block.Time)
	if dead < st.Params.EmergencyTimeout {
		return fmt.Errorf("%w: head is %v old, timeout %v", ErrNotDead, dead, st.Params.EmergencyTimeout)
	}
	// Pay out candidates, then matured-and-unmatured withdrawals alike.
	var total host.Lamports
	for _, cand := range st.Candidates {
		total += cand.Stake
	}
	for _, wd := range st.Withdrawals {
		total += wd.Amount
	}
	if err := ctx.Debit(st.Account, total); err != nil {
		return err
	}
	for _, cand := range st.Candidates {
		ctx.Credit(cand.Owner, cand.Stake)
	}
	for _, wd := range st.Withdrawals {
		ctx.Credit(wd.Owner, wd.Amount)
	}
	st.Candidates = make(map[cryptoutil.PubKey]*Candidate)
	st.Withdrawals = nil
	st.Halted = true
	ctx.Emit(EventEmergencyRelease{Released: total})
	return nil
}

// submitMisbehaviour slashes a validator given verified fisherman
// evidence (§III-C).
func (c *Contract) submitMisbehaviour(ctx *host.ExecContext, st *State, r *wire.Reader) error {
	e, err := decodeEvidence(r)
	if err != nil {
		return err
	}
	if st.Slashed[e.Validator] {
		return ErrSlashedValidator
	}
	// The runtime precompile must have verified the claimed signatures.
	payloadA := payloadForHash(e.BlockA)
	if !ctx.PrecompileVerified(e.Validator, payloadA[:]) {
		return ErrBadSignature
	}

	switch e.Kind {
	case EvidenceDoubleSign:
		payloadB := payloadForHash(e.BlockB)
		if !ctx.PrecompileVerified(e.Validator, payloadB[:]) {
			return ErrBadSignature
		}
		if e.BlockA == e.BlockB {
			return fmt.Errorf("%w: identical blocks", ErrBadEvidence)
		}
		// Both blocks claim the same height: the fisherman asserts it and
		// the signatures are over height-binding block hashes; require at
		// least one of them to differ from the canonical block if the
		// height is known, otherwise the pair itself is the offence.
		entry, err := st.Entry(e.Height)
		if err == nil {
			canonical := entry.Block.Hash()
			if e.BlockA == canonical && e.BlockB == canonical {
				return fmt.Errorf("%w: both signatures match the canonical block", ErrBadEvidence)
			}
		}
	case EvidenceFutureHeight:
		if e.Height <= st.Height() {
			return fmt.Errorf("%w: height %d is not in the future", ErrBadEvidence, e.Height)
		}
	case EvidenceWrongFork:
		entry, err := st.Entry(e.Height)
		if err != nil {
			return err
		}
		if entry.Block.Hash() == e.BlockA {
			return fmt.Errorf("%w: signature matches the canonical block", ErrBadEvidence)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadEvidence, e.Kind)
	}

	// Slash: confiscate stake, remove from candidacy, reward the
	// fisherman with half the stake. The fallible step (paying the
	// reward from the contract account) runs before any state mutation
	// so a failure leaves the contract consistent.
	var confiscated host.Lamports
	if cand, ok := st.Candidates[e.Validator]; ok {
		confiscated = cand.Stake
	}
	for _, wd := range st.Withdrawals {
		if wd.PubKey == e.Validator {
			confiscated += wd.Amount
		}
	}
	reward := confiscated / 2
	if reward > 0 {
		if err := ctx.Debit(st.Account, reward); err != nil {
			return err
		}
		ctx.Credit(ctx.FeePayer(), reward)
	}
	st.Slashed[e.Validator] = true
	delete(st.Candidates, e.Validator)
	var kept []Withdrawal
	for _, wd := range st.Withdrawals {
		if wd.PubKey != e.Validator {
			kept = append(kept, wd)
		}
	}
	st.Withdrawals = kept
	st.SlashedPot += confiscated - reward
	ctx.Emit(EventValidatorSlashed{
		Validator: e.Validator,
		Kind:      e.Kind,
		Stake:     confiscated,
	})
	return nil
}
