package guest

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wire"

	"repro/internal/cryptoutil"
	"repro/internal/guestblock"
	"repro/internal/host"
	"repro/internal/ibc"
)

// env is a contract test environment: a host chain on a manual clock, a
// deployed contract with a small validator set, and helpers to drive
// slots.
type env struct {
	t        *testing.T
	clock    *host.ManualClock
	chain    *host.Chain
	contract *Contract
	keys     []*cryptoutil.PrivKey
	payer    cryptoutil.PubKey
}

func newEnv(t *testing.T, validators int) *env {
	t.Helper()
	clock := host.NewManualClock(time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC))
	chain := host.NewChain(clock)
	payer := cryptoutil.GenerateKey("env-payer").Public()
	chain.Fund(payer, 1_000_000*host.LamportsPerSOL)

	e := &env{t: t, clock: clock, chain: chain, payer: payer}
	var genesis []guestblock.Validator
	for i := 0; i < validators; i++ {
		k := cryptoutil.GenerateKeyIndexed("env-val", i)
		e.keys = append(e.keys, k)
		chain.Fund(k.Public(), 2_000*host.LamportsPerSOL)
		genesis = append(genesis, guestblock.Validator{PubKey: k.Public(), Stake: uint64(100 * host.LamportsPerSOL)})
	}
	params := DefaultParams()
	params.Delta = time.Hour
	params.EpochLength = 1000
	contract, _, err := Deploy(chain, Config{Params: params, Payer: payer, GenesisValidators: genesis})
	if err != nil {
		t.Fatal(err)
	}
	e.contract = contract
	return e
}

// step advances one slot and produces a block, returning it.
func (e *env) step() *host.Block {
	e.clock.Advance(host.SlotDuration)
	return e.chain.ProduceBlock()
}

// submit submits a tx and produces a block; fails the test on exec error.
func (e *env) submit(tx *host.Transaction) *host.Block {
	e.t.Helper()
	if err := e.chain.Submit(tx); err != nil {
		e.t.Fatal(err)
	}
	b := e.step()
	for _, r := range b.Results {
		if r.Err != nil {
			e.t.Fatalf("tx %q failed: %v", r.Label, r.Err)
		}
	}
	return b
}

// submitExpectErr submits and returns the execution error.
func (e *env) submitExpectErr(tx *host.Transaction) error {
	e.t.Helper()
	if err := e.chain.Submit(tx); err != nil {
		return err
	}
	b := e.step()
	for _, r := range b.Results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

func (e *env) state() *State {
	e.t.Helper()
	st, err := e.contract.State(e.chain)
	if err != nil {
		e.t.Fatal(err)
	}
	return st
}

// finaliseHead has all validators sign the current head.
func (e *env) finaliseHead() {
	e.t.Helper()
	st := e.state()
	head := st.Head()
	for _, k := range e.keys {
		if head.Finalised {
			return
		}
		if !head.Epoch.Has(k.Public()) {
			continue
		}
		builder := NewTxBuilder(e.contract, k.Public())
		e.submit(builder.SignTx(k, head.Block))
	}
	if !e.state().Head().Finalised {
		e.t.Fatal("head not finalised after all signatures")
	}
}

// dirtyState writes a value so GenerateBlock has something to commit.
func (e *env) dirtyState(tag string) {
	e.t.Helper()
	st := e.state()
	if err := st.Store.Set("test/"+tag, []byte(tag)); err != nil {
		e.t.Fatal(err)
	}
}

func TestDeployCreatesGenesis(t *testing.T) {
	e := newEnv(t, 4)
	st := e.state()
	if st.Height() != 1 || !st.Head().Finalised {
		t.Fatalf("genesis: height=%d finalised=%v", st.Height(), st.Head().Finalised)
	}
	if st.CurrentEpoch.Index != 0 || len(st.CurrentEpoch.Validators) != 4 {
		t.Fatalf("epoch: %+v", st.CurrentEpoch)
	}
	// Genesis stakes escrowed into the contract account.
	if bal := e.chain.Balance(e.contract.StateKey()); bal < 400*host.LamportsPerSOL {
		t.Fatalf("contract balance %d missing escrowed stakes", bal)
	}
}

func TestGenerateBlockConditions(t *testing.T) {
	e := newEnv(t, 4)
	crank := NewTxBuilder(e.contract, e.payer)

	// Nothing changed, head fresh: GenerateBlock must fail.
	if err := e.submitExpectErr(crank.GenerateBlockTx()); !errors.Is(err, ErrNothingToCommit) {
		t.Fatalf("err = %v, want ErrNothingToCommit", err)
	}
	// Root changed: block is due.
	e.dirtyState("a")
	e.submit(crank.GenerateBlockTx())
	st := e.state()
	if st.Height() != 2 {
		t.Fatalf("height = %d, want 2", st.Height())
	}
	// Head unfinalised: next block refused.
	e.dirtyState("b")
	if err := e.submitExpectErr(crank.GenerateBlockTx()); !errors.Is(err, ErrHeadNotFinalised) {
		t.Fatalf("err = %v, want ErrHeadNotFinalised", err)
	}
	e.finaliseHead()
	e.submit(crank.GenerateBlockTx())
	if e.state().Height() != 3 {
		t.Fatal("block not generated after finalisation")
	}
}

func TestDeltaForcesEmptyBlock(t *testing.T) {
	e := newEnv(t, 4)
	crank := NewTxBuilder(e.contract, e.payer)
	e.dirtyState("x")
	e.submit(crank.GenerateBlockTx())
	e.finaliseHead()

	// No state change, but Δ elapses: an empty block is allowed.
	if err := e.submitExpectErr(crank.GenerateBlockTx()); !errors.Is(err, ErrNothingToCommit) {
		t.Fatalf("err = %v, want ErrNothingToCommit", err)
	}
	e.clock.Advance(time.Hour + time.Minute)
	e.submit(crank.GenerateBlockTx())
	st := e.state()
	if st.Height() != 3 {
		t.Fatalf("height = %d, want 3 (empty Δ block)", st.Height())
	}
	head := st.Head()
	prev, _ := st.Entry(2)
	if head.Block.StateRoot != prev.Block.StateRoot {
		t.Fatal("Δ block should carry the same root")
	}
}

func TestSignChecksAndQuorum(t *testing.T) {
	e := newEnv(t, 4) // equal stakes: quorum needs 3 of 4
	crank := NewTxBuilder(e.contract, e.payer)
	e.dirtyState("s")
	e.submit(crank.GenerateBlockTx())
	st := e.state()
	head := st.Head()

	// Outsider signature rejected.
	outsider := cryptoutil.GenerateKey("outsider")
	e.chain.Fund(outsider.Public(), host.LamportsPerSOL)
	ob := NewTxBuilder(e.contract, outsider.Public())
	if err := e.submitExpectErr(ob.SignTx(outsider, head.Block)); !errors.Is(err, ErrNotValidator) {
		t.Fatalf("err = %v, want ErrNotValidator", err)
	}

	// A Sign claim without runtime verification is rejected.
	b0 := NewTxBuilder(e.contract, e.keys[0].Public())
	forged := b0.SignTx(e.keys[0], head.Block)
	forged.PrecompileSigs = nil
	if err := e.submitExpectErr(forged); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}

	// Two signatures: no quorum yet.
	for i := 0; i < 2; i++ {
		bi := NewTxBuilder(e.contract, e.keys[i].Public())
		e.submit(bi.SignTx(e.keys[i], head.Block))
	}
	if e.state().Head().Finalised {
		t.Fatal("finalised below quorum")
	}
	// Duplicate rejected.
	bi := NewTxBuilder(e.contract, e.keys[0].Public())
	if err := e.submitExpectErr(bi.SignTx(e.keys[0], head.Block)); !errors.Is(err, ErrAlreadySigned) {
		t.Fatalf("err = %v, want ErrAlreadySigned", err)
	}
	// Third signature finalises; the FinalisedBlock event fires.
	b2 := NewTxBuilder(e.contract, e.keys[2].Public())
	blk := e.submit(b2.SignTx(e.keys[2], head.Block))
	if !e.state().Head().Finalised {
		t.Fatal("not finalised at quorum")
	}
	if len(blk.EventsOfKind("FinalisedBlock")) != 1 {
		t.Fatal("FinalisedBlock event missing")
	}
}

func TestStakeUnstakeWithdraw(t *testing.T) {
	e := newEnv(t, 2)
	newcomer := cryptoutil.GenerateKey("newcomer")
	owner := cryptoutil.GenerateKey("owner").Public()
	e.chain.Fund(owner, 1_000*host.LamportsPerSOL)
	builder := NewTxBuilder(e.contract, owner)

	// Below minimum rejected.
	if err := e.submitExpectErr(builder.StakeTx(newcomer.Public(), 10)); !errors.Is(err, ErrStakeTooSmall) {
		t.Fatalf("err = %v, want ErrStakeTooSmall", err)
	}
	stake := 500 * host.LamportsPerSOL
	e.submit(builder.StakeTx(newcomer.Public(), stake))
	st := e.state()
	if st.Candidates[newcomer.Public()] == nil || st.Candidates[newcomer.Public()].Stake != stake {
		t.Fatal("stake not recorded")
	}
	ownerBal := e.chain.Balance(owner)

	// Unstake by a non-owner rejected.
	stranger := cryptoutil.GenerateKey("stranger").Public()
	e.chain.Fund(stranger, host.LamportsPerSOL)
	sb := NewTxBuilder(e.contract, stranger)
	if err := e.submitExpectErr(sb.UnstakeTx(newcomer.Public())); err == nil {
		t.Fatal("stranger unstaked someone else's validator")
	}

	// Owner unstakes; withdrawal matures after the unbonding period.
	e.submit(builder.UnstakeTx(newcomer.Public()))
	if err := e.submitExpectErr(builder.WithdrawTx()); !errors.Is(err, ErrNothingToWithdraw) {
		t.Fatalf("err = %v, want ErrNothingToWithdraw (unbonding)", err)
	}
	e.clock.Advance(st.Params.UnbondingPeriod + time.Minute)
	e.submit(builder.WithdrawTx())
	gained := e.chain.Balance(owner) - ownerBal
	// The stake came back minus the few tx fees paid meanwhile.
	if gained < stake-host.Lamports(100_000) {
		t.Fatalf("withdrawal returned %d, want ~%d", gained, stake)
	}
}

func TestEpochRotationSelectsTopStake(t *testing.T) {
	e := newEnv(t, 3)
	st := e.state()
	st.Params.MaxValidators = 3 // cap the set

	// A richer candidate stakes in.
	whale := cryptoutil.GenerateKey("whale")
	owner := cryptoutil.GenerateKey("whale-owner").Public()
	e.chain.Fund(owner, 10_000*host.LamportsPerSOL)
	wb := NewTxBuilder(e.contract, owner)
	e.submit(wb.StakeTx(whale.Public(), 5_000*host.LamportsPerSOL))

	// Roll past the epoch length (1000 slots) and rotate.
	crank := NewTxBuilder(e.contract, e.payer)
	e.clock.Advance(1001 * host.SlotDuration)
	e.dirtyState("rot")
	e.submit(crank.GenerateBlockTx())
	st = e.state()
	head := st.Head()
	if head.Block.NextEpoch == nil {
		t.Fatal("rotation block has no next epoch")
	}
	next := head.Block.NextEpoch
	if next.Index != 1 || !next.Has(whale.Public()) {
		t.Fatalf("next epoch: %+v", next)
	}
	if len(next.Validators) != 3 {
		t.Fatalf("next epoch size = %d, want capped 3", len(next.Validators))
	}
	// The weakest genesis validator fell out (equal stakes: two of three
	// genesis validators remain).
	if st.CurrentEpoch.Index != 1 {
		t.Fatal("contract did not advance the epoch")
	}
	// The rotation block is finalised by the OLD epoch.
	if head.Epoch.Index != 0 {
		t.Fatal("rotation block must be signed by the old epoch")
	}
}

func TestSendPacketCollectsFees(t *testing.T) {
	e := newEnv(t, 2)
	// Open a channel directly for the test (handshake is covered in the
	// relayer tests).
	st := e.state()
	st.BeginDirect(e.clock.Now(), uint64(e.chain.Slot()))
	mod := &nopModule{}
	if err := st.Handler.BindPort("transfer", mod); err != nil {
		t.Fatal(err)
	}
	openTestChannel(t, st, "transfer")

	sender := cryptoutil.GenerateKey("sender").Public()
	e.chain.Fund(sender, host.LamportsPerSOL)
	builder := NewTxBuilder(e.contract, sender)
	before := e.chain.Balance(sender)
	e.submit(builder.SendPacketTx(&SendPacketArgs{
		Sender:  sender,
		Port:    "transfer",
		Channel: "channel-0",
		Data:    []byte("payload"),
	}))
	st = e.state()
	if len(st.PendingPackets) != 1 {
		t.Fatalf("pending packets = %d", len(st.PendingPackets))
	}
	spent := before - e.chain.Balance(sender)
	if spent < st.Params.PacketFee {
		t.Fatalf("sender spent %d, fee is %d", spent, st.Params.PacketFee)
	}
	// The packet rides the next generated block.
	crank := NewTxBuilder(e.contract, e.payer)
	e.submit(crank.GenerateBlockTx())
	st = e.state()
	if len(st.Head().Packets) != 1 || len(st.PendingPackets) != 0 {
		t.Fatal("packet did not ride the new block")
	}
}

func TestChunkedUploadRoundTrip(t *testing.T) {
	e := newEnv(t, 2)
	relayerKey := cryptoutil.GenerateKey("chunker").Public()
	e.chain.Fund(relayerKey, 10*host.LamportsPerSOL)
	builder := NewTxBuilder(e.contract, relayerKey)

	// Stage a payload far beyond one transaction.
	payload := make([]byte, 5_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Use the recv flow against a missing buffer first.
	bad := NewTxBuilder(e.contract, relayerKey)
	if err := e.submitExpectErr(bad.tx("bad-commit", EncodeCommit(OpCommitRecvPacket, &CommitArgs{BufferID: 77}))); !errors.Is(err, ErrUnknownBuffer) {
		t.Fatalf("err = %v, want ErrUnknownBuffer", err)
	}

	txs := builder.ChunkedUpload(OpCommitRecvPacket, "", payload, nil, "test-upload")
	if len(txs) < 5 {
		t.Fatalf("5KB upload took %d txs, want >= 5", len(txs))
	}
	for _, tx := range txs[:len(txs)-1] {
		if tx.Size() > host.MaxTransactionSize {
			t.Fatalf("chunk tx %d bytes exceeds the limit", tx.Size())
		}
		e.submit(tx)
	}
	// The staged buffer holds the payload; the commit decodes it (it is
	// not a valid RecvPayload, so the commit fails with a decode error —
	// which proves the bytes arrived reassembled).
	err := e.submitExpectErr(txs[len(txs)-1])
	if err == nil || errors.Is(err, ErrUnknownBuffer) {
		t.Fatalf("commit err = %v, want decode failure of reassembled payload", err)
	}
}

func TestMisbehaviourSlashing(t *testing.T) {
	e := newEnv(t, 4)
	crank := NewTxBuilder(e.contract, e.payer)
	e.dirtyState("m")
	e.submit(crank.GenerateBlockTx())
	e.finaliseHead()

	fisher := cryptoutil.GenerateKey("fisher").Public()
	e.chain.Fund(fisher, host.LamportsPerSOL)
	fb := NewTxBuilder(e.contract, fisher)
	offender := e.keys[3]

	// Wrong-fork evidence: signature over a non-canonical block hash at
	// an existing height.
	forged := cryptoutil.HashBytes([]byte("forged block"))
	ev := &Evidence{
		Kind:      EvidenceWrongFork,
		Validator: offender.Public(),
		Height:    2,
		BlockA:    forged,
		SigA:      offender.SignHash(guestblock.SigningPayloadForHash(forged)),
	}
	fisherBefore := e.chain.Balance(fisher)
	e.submit(fb.MisbehaviourTx(ev))
	st := e.state()
	if !st.Slashed[offender.Public()] {
		t.Fatal("offender not slashed")
	}
	if st.Candidates[offender.Public()] != nil {
		t.Fatal("offender still a candidate")
	}
	if e.chain.Balance(fisher) <= fisherBefore {
		t.Fatal("fisherman not rewarded")
	}
	if st.SlashedPot == 0 {
		t.Fatal("no slashed stake retained")
	}

	// Slashed validator's signatures are rejected.
	e.dirtyState("m2")
	e.submit(crank.GenerateBlockTx())
	head := e.state().Head()
	ob := NewTxBuilder(e.contract, offender.Public())
	if err := e.submitExpectErr(ob.SignTx(offender, head.Block)); !errors.Is(err, ErrSlashedValidator) {
		t.Fatalf("err = %v, want ErrSlashedValidator", err)
	}

	// Repeated evidence for the same validator is rejected.
	if err := e.submitExpectErr(fb.MisbehaviourTx(ev)); !errors.Is(err, ErrSlashedValidator) {
		t.Fatalf("err = %v, want ErrSlashedValidator", err)
	}
}

func TestMisbehaviourRejectsCanonicalSignature(t *testing.T) {
	e := newEnv(t, 4)
	crank := NewTxBuilder(e.contract, e.payer)
	e.dirtyState("c")
	e.submit(crank.GenerateBlockTx())
	e.finaliseHead()

	st := e.state()
	entry, err := st.Entry(2)
	if err != nil {
		t.Fatal(err)
	}
	honest := e.keys[0]
	canonical := entry.Block.Hash()
	ev := &Evidence{
		Kind:      EvidenceWrongFork,
		Validator: honest.Public(),
		Height:    2,
		BlockA:    canonical,
		SigA:      honest.SignHash(guestblock.SigningPayloadForHash(canonical)),
	}
	fisher := cryptoutil.GenerateKey("fisher2").Public()
	e.chain.Fund(fisher, host.LamportsPerSOL)
	fb := NewTxBuilder(e.contract, fisher)
	if err := e.submitExpectErr(fb.MisbehaviourTx(ev)); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("err = %v, want ErrBadEvidence (canonical signature is honest)", err)
	}
	if e.state().Slashed[honest.Public()] {
		t.Fatal("honest validator slashed")
	}
}

func TestMisbehaviourFutureHeight(t *testing.T) {
	e := newEnv(t, 4)
	offender := e.keys[1]
	forged := cryptoutil.HashBytes([]byte("future"))
	ev := &Evidence{
		Kind:      EvidenceFutureHeight,
		Validator: offender.Public(),
		Height:    999,
		BlockA:    forged,
		SigA:      offender.SignHash(guestblock.SigningPayloadForHash(forged)),
	}
	fisher := cryptoutil.GenerateKey("fisher3").Public()
	e.chain.Fund(fisher, host.LamportsPerSOL)
	fb := NewTxBuilder(e.contract, fisher)
	e.submit(fb.MisbehaviourTx(ev))
	if !e.state().Slashed[offender.Public()] {
		t.Fatal("future-height offender not slashed")
	}
	// Evidence claiming a PAST height under this kind is invalid.
	ev2 := &Evidence{
		Kind:      EvidenceFutureHeight,
		Validator: e.keys[2].Public(),
		Height:    1,
		BlockA:    forged,
		SigA:      e.keys[2].SignHash(guestblock.SigningPayloadForHash(forged)),
	}
	if err := e.submitExpectErr(fb.MisbehaviourTx(ev2)); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("err = %v, want ErrBadEvidence", err)
	}
}

func TestValidateSelfClient(t *testing.T) {
	e := newEnv(t, 3)
	st := e.state()
	// A correct client state for height 1 / epoch 0 passes.
	good := buildGuestClientState(t, st, 1, st.CurrentEpoch.Commitment())
	if err := st.ValidateSelfClient(good); err != nil {
		t.Fatal(err)
	}
	// Future height fails.
	ahead := buildGuestClientState(t, st, 99, st.CurrentEpoch.Commitment())
	if err := st.ValidateSelfClient(ahead); err == nil {
		t.Fatal("client ahead of chain accepted")
	}
	// Unknown epoch fails.
	bad := buildGuestClientState(t, st, 1, cryptoutil.HashBytes([]byte("fake epoch")))
	if err := st.ValidateSelfClient(bad); err == nil {
		t.Fatal("unknown validator set accepted")
	}
}

// nopModule acks everything.
type nopModule struct{}

func (nopModule) OnChanOpen(ibc.PortID, ibc.ChannelID, string) error { return nil }
func (nopModule) OnRecvPacket(ibc.Packet) ([]byte, error)            { return []byte("ok"), nil }
func (nopModule) OnAcknowledgementPacket(ibc.Packet, []byte) error   { return nil }
func (nopModule) OnTimeoutPacket(ibc.Packet) error                   { return nil }

// openTestChannel force-opens a channel end for unit tests that do not
// exercise the handshake.
func openTestChannel(t *testing.T, st *State, port ibc.PortID) {
	t.Helper()
	// A minimal always-valid client for the fake counterparty.
	if err := st.Handler.CreateClient("test-client", &permissiveClient{}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Handler.ConnOpenInit("test-client", "their-client"); err != nil {
		t.Fatal(err)
	}
	if err := forceOpen(st, port); err != nil {
		t.Fatal(err)
	}
}

type permissiveClient struct{}

func (permissiveClient) Type() string                   { return "permissive" }
func (permissiveClient) LatestHeight() ibc.Height       { return 1 }
func (permissiveClient) Frozen() bool                   { return false }
func (permissiveClient) StateBytes() []byte             { return []byte("permissive") }
func (permissiveClient) Update([]byte, time.Time) error { return nil }
func (permissiveClient) VerifyMembership(ibc.Height, string, []byte, []byte) error {
	return nil
}
func (permissiveClient) VerifyNonMembership(ibc.Height, string, []byte) error { return nil }
func (permissiveClient) ConsensusTime(ibc.Height) (time.Time, error) {
	// Far future, so timestamp-based timeouts are provable in tests.
	return time.Unix(1<<40, 0), nil
}

// buildGuestClientState encodes a guestlc client state for ValidateSelfClient
// tests (mirrors guestlc.Client.StateBytes).
func buildGuestClientState(t *testing.T, st *State, latest uint64, commitment cryptoutil.Hash) []byte {
	t.Helper()
	w := wire.NewWriter()
	w.String16("guest-blockchain")
	w.U64(latest)
	w.U64(st.CurrentEpoch.Index)
	w.Hash(commitment)
	return w.Bytes()
}

// forceOpen walks the connection and channel ends to OPEN through the
// permissive client.
func forceOpen(st *State, port ibc.PortID) error {
	w := wire.NewWriter()
	w.String16("guest-blockchain")
	w.U64(1)
	w.U64(st.CurrentEpoch.Index)
	commitment := st.CurrentEpoch.Commitment()
	w.Hash(commitment)
	selfClient := w.Bytes()
	if err := st.Handler.ConnOpenAck("connection-0", "connection-9", selfClient, nil, 1); err != nil {
		return err
	}
	chanID, err := st.Handler.ChanOpenInit(port, "connection-0", port, ibc.Unordered, "")
	if err != nil {
		return err
	}
	return st.Handler.ChanOpenAck(port, chanID, "channel-9", nil, 1)
}

func TestEmergencyRelease(t *testing.T) {
	e := newEnv(t, 3)
	anyone := cryptoutil.GenerateKey("anyone").Public()
	e.chain.Fund(anyone, host.LamportsPerSOL)
	builder := NewTxBuilder(e.contract, anyone)

	// Too early: the chain is alive.
	if err := e.submitExpectErr(builder.EmergencyReleaseTx()); !errors.Is(err, ErrNotDead) {
		t.Fatalf("err = %v, want ErrNotDead", err)
	}

	// Kill the chain: a block is generated but never finalised, and the
	// emergency timeout passes.
	e.dirtyState("death")
	crank := NewTxBuilder(e.contract, e.payer)
	e.submit(crank.GenerateBlockTx())
	st := e.state()
	e.clock.Advance(st.Params.EmergencyTimeout + time.Hour)

	ownerBalances := make([]host.Lamports, len(e.keys))
	for i, k := range e.keys {
		ownerBalances[i] = e.chain.Balance(k.Public())
	}
	e.submit(builder.EmergencyReleaseTx())
	st = e.state()
	if !st.Halted {
		t.Fatal("contract not halted")
	}
	if len(st.Candidates) != 0 {
		t.Fatal("candidates not cleared")
	}
	for i, k := range e.keys {
		gained := e.chain.Balance(k.Public()) - ownerBalances[i]
		if gained < 100*host.LamportsPerSOL {
			t.Fatalf("validator %d got %d back, want its 100 SOL stake", i, gained)
		}
	}
	// All further operations are refused.
	if err := e.submitExpectErr(crank.GenerateBlockTx()); !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if err := e.submitExpectErr(builder.EmergencyReleaseTx()); !errors.Is(err, ErrHalted) {
		t.Fatalf("second release = %v, want ErrHalted", err)
	}
}

func TestEmergencyReleaseDisabled(t *testing.T) {
	e := newEnv(t, 2)
	st := e.state()
	st.Params.EmergencyTimeout = 0
	e.clock.Advance(365 * 24 * time.Hour)
	anyone := cryptoutil.GenerateKey("anyone2").Public()
	e.chain.Fund(anyone, host.LamportsPerSOL)
	builder := NewTxBuilder(e.contract, anyone)
	if err := e.submitExpectErr(builder.EmergencyReleaseTx()); !errors.Is(err, ErrNotDead) {
		t.Fatalf("err = %v, want ErrNotDead (disabled)", err)
	}
}

func TestMisbehaviourDoubleSign(t *testing.T) {
	e := newEnv(t, 4)
	offender := e.keys[2]
	hashA := cryptoutil.HashBytes([]byte("candidate A"))
	hashB := cryptoutil.HashBytes([]byte("candidate B"))
	ev := &Evidence{
		Kind:      EvidenceDoubleSign,
		Validator: offender.Public(),
		Height:    7, // height not on chain yet: the pair itself is the offence
		BlockA:    hashA,
		SigA:      offender.SignHash(guestblock.SigningPayloadForHash(hashA)),
		BlockB:    hashB,
		SigB:      offender.SignHash(guestblock.SigningPayloadForHash(hashB)),
	}
	fisher := cryptoutil.GenerateKey("ds-fisher").Public()
	e.chain.Fund(fisher, host.LamportsPerSOL)
	fb := NewTxBuilder(e.contract, fisher)
	e.submit(fb.MisbehaviourTx(ev))
	if !e.state().Slashed[offender.Public()] {
		t.Fatal("double-signer not slashed")
	}

	// Identical hashes are not double-signing.
	honest := e.keys[1]
	same := &Evidence{
		Kind:      EvidenceDoubleSign,
		Validator: honest.Public(),
		Height:    7,
		BlockA:    hashA,
		SigA:      honest.SignHash(guestblock.SigningPayloadForHash(hashA)),
		BlockB:    hashA,
		SigB:      honest.SignHash(guestblock.SigningPayloadForHash(hashA)),
	}
	if err := e.submitExpectErr(fb.MisbehaviourTx(same)); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("identical-hash evidence = %v, want ErrBadEvidence", err)
	}
}

func TestCommitAckAndTimeoutThroughInstructions(t *testing.T) {
	e := newEnv(t, 2)
	st := e.state()
	st.BeginDirect(e.clock.Now(), uint64(e.chain.Slot()))
	mod := &recordingModule{}
	if err := st.Handler.BindPort("transfer", mod); err != nil {
		t.Fatal(err)
	}
	openTestChannel(t, st, "transfer")

	sender := cryptoutil.GenerateKey("cat-sender").Public()
	e.chain.Fund(sender, host.LamportsPerSOL)
	sb := NewTxBuilder(e.contract, sender)
	// Send two packets: one will be acked, one timed out.
	e.submit(sb.SendPacketTx(&SendPacketArgs{
		Sender: sender, Port: "transfer", Channel: "channel-0", Data: []byte("to-ack"),
	}))
	e.submit(sb.SendPacketTx(&SendPacketArgs{
		Sender: sender, Port: "transfer", Channel: "channel-0", Data: []byte("to-timeout"),
		TimeoutTimestamp: e.clock.Now().Add(time.Minute),
	}))
	st = e.state()
	pktAck := st.PendingPackets[0]
	pktTimeout := st.PendingPackets[1]

	relayerKey := cryptoutil.GenerateKey("cat-relayer").Public()
	e.chain.Fund(relayerKey, 10*host.LamportsPerSOL)
	rb := NewTxBuilder(e.contract, relayerKey)

	// Ack the first packet (permissive client accepts any proof bytes).
	for _, tx := range rb.AckPacketTxs(&AckPayload{
		Packet: pktAck, Ack: []byte(`{"result":"ok"}`), ProofHeight: 1, Proof: []byte{1},
	}) {
		e.submit(tx)
	}
	if len(mod.acks) != 1 {
		t.Fatalf("acks = %d", len(mod.acks))
	}
	st = e.state()
	if st.Handler.HasCommitment(pktAck) {
		t.Fatal("ack did not clear the commitment")
	}

	// Timeout the second packet: the permissive client reports a distant
	// consensus time, so the timestamp deadline is provably past.
	e.clock.Advance(2 * time.Minute)
	for _, tx := range rb.TimeoutPacketTxs(&TimeoutPayload{
		Packet: pktTimeout, ProofHeight: 1, Proof: []byte{1},
	}) {
		e.submit(tx)
	}
	if len(mod.timeouts) != 1 {
		t.Fatalf("timeouts = %d", len(mod.timeouts))
	}
	st = e.state()
	if st.Handler.HasCommitment(pktTimeout) {
		t.Fatal("timeout did not clear the commitment")
	}
}

// recordingModule records application callbacks.
type recordingModule struct {
	recvd    []ibc.Packet
	acks     [][]byte
	timeouts []ibc.Packet
}

func (m *recordingModule) OnChanOpen(ibc.PortID, ibc.ChannelID, string) error { return nil }
func (m *recordingModule) OnRecvPacket(p ibc.Packet) ([]byte, error) {
	m.recvd = append(m.recvd, p)
	return []byte("ok"), nil
}
func (m *recordingModule) OnAcknowledgementPacket(p ibc.Packet, ack []byte) error {
	m.acks = append(m.acks, ack)
	return nil
}
func (m *recordingModule) OnTimeoutPacket(p ibc.Packet) error {
	m.timeouts = append(m.timeouts, p)
	return nil
}
