package guest

import (
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/ibc"
	"repro/internal/lightclient/tendermint"
)

// updateClientPresigned applies a light-client update using the staging
// buffer's runtime-verified signature set. For Tendermint-style clients
// this avoids in-contract Ed25519 entirely (the §IV compute-budget
// workaround); other client types fall back to their own verification.
func updateClientPresigned(client ibc.Client, header []byte, now time.Time, buf *StagingBuffer) error {
	tc, ok := client.(*tendermint.Client)
	if !ok {
		return client.Update(header, now)
	}
	u, err := tendermint.UnmarshalUpdate(header)
	if err != nil {
		return err
	}
	check := func(pub cryptoutil.PubKey, payload cryptoutil.Hash) bool {
		return buf.VerifiedSigs[sigDigest(pub, payload[:])]
	}
	return tc.UpdatePresigned(u, now, check)
}
