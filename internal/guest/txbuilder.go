package guest

import (
	"repro/internal/cryptoutil"
	"repro/internal/guestblock"
	"repro/internal/host"
	"repro/internal/ibc"
)

// TxBuilder builds host transactions that invoke the Guest Contract,
// including the chunked multi-transaction uploads that work around the
// 1232-byte transaction limit (§IV). A builder is bound to one fee payer
// and one fee policy.
type TxBuilder struct {
	contract *Contract
	payer    cryptoutil.PubKey

	// PriorityFee and BundleTip set the fee policy for every built
	// transaction (§V-A fee clusters, §VI-B).
	PriorityFee host.Lamports
	BundleTip   host.Lamports

	// Profile is the host profile chunked uploads are sized for
	// (Solana by default; §VI-D hosts with roomier transactions need
	// far fewer chunks).
	Profile host.Profile

	nextBuffer uint64
}

// NewTxBuilder returns a builder paying fees from payer, sized for the
// Solana profile.
func NewTxBuilder(contract *Contract, payer cryptoutil.PubKey) *TxBuilder {
	return &TxBuilder{contract: contract, payer: payer, Profile: host.SolanaProfile()}
}

// NewTxBuilderForProfile returns a builder sized for a custom host
// profile.
func NewTxBuilderForProfile(contract *Contract, payer cryptoutil.PubKey, p host.Profile) *TxBuilder {
	return &TxBuilder{contract: contract, payer: payer, Profile: p}
}

func (b *TxBuilder) tx(label string, data []byte) *host.Transaction {
	return &host.Transaction{
		FeePayer: b.payer,
		Instructions: []host.Instruction{{
			Program:  b.contract.programID,
			Accounts: []cryptoutil.PubKey{b.contract.stateKey},
			Data:     data,
		}},
		PriorityFee: b.PriorityFee,
		BundleTip:   b.BundleTip,
		Label:       label,
	}
}

// SendPacketTx builds an Alg. 1 SendPacket invocation.
func (b *TxBuilder) SendPacketTx(a *SendPacketArgs) *host.Transaction {
	return b.tx("send-packet", EncodeSendPacket(a))
}

// GenerateBlockTx builds an Alg. 1 GenerateBlock invocation.
func (b *TxBuilder) GenerateBlockTx() *host.Transaction {
	return b.tx("generate-block", EncodeGenerateBlock())
}

// SignTx builds a validator's Alg. 1 Sign invocation: the signature rides
// as a runtime precompile verification (§IV), the instruction carries the
// claim.
func (b *TxBuilder) SignTx(key *cryptoutil.PrivKey, block *guestblock.Block) *host.Transaction {
	payload := block.SigningPayload()
	sig := key.SignHash(payload)
	tx := b.tx("sign", EncodeSign(&SignArgs{
		Height:    block.Height,
		PubKey:    key.Public(),
		Signature: sig,
	}))
	tx.PrecompileSigs = []host.SigVerify{{Pub: key.Public(), Msg: payload.Bytes(), Sig: sig}}
	return tx
}

// StakeTx builds an OpStake invocation (payer must hold the lamports).
func (b *TxBuilder) StakeTx(validator cryptoutil.PubKey, amount host.Lamports) *host.Transaction {
	return b.tx("stake", EncodeStake(&StakeArgs{Validator: validator, Amount: uint64(amount)}))
}

// UnstakeTx builds an OpUnstake invocation.
func (b *TxBuilder) UnstakeTx(validator cryptoutil.PubKey) *host.Transaction {
	return b.tx("unstake", EncodeUnstake(validator))
}

// WithdrawTx builds an OpWithdraw invocation.
func (b *TxBuilder) WithdrawTx() *host.Transaction {
	return b.tx("withdraw", EncodeWithdraw())
}

// EmergencyReleaseTx builds an OpEmergencyRelease invocation (§VI-A).
func (b *TxBuilder) EmergencyReleaseTx() *host.Transaction {
	return b.tx("emergency-release", EncodeEmergencyRelease())
}

// MisbehaviourTx builds a fisherman's OpSubmitMisbehaviour invocation with
// the evidence signatures attached as precompile verifications.
func (b *TxBuilder) MisbehaviourTx(e *Evidence) *host.Transaction {
	tx := b.tx("misbehaviour", e.Marshal())
	for _, sv := range e.SigVerifies() {
		tx.PrecompileSigs = append(tx.PrecompileSigs, host.SigVerify{Pub: sv.Pub, Msg: sv.Msg, Sig: sv.Sig})
	}
	return tx
}

// SigBatch is a signature the chunk uploader must have the runtime verify
// (counterparty commit signatures for a light-client update).
type SigBatch struct {
	Pub cryptoutil.PubKey
	// Payload is the signed digest bytes.
	Payload []byte
	Sig     cryptoutil.Signature
}

// Chunk packing constants, derived from the host limits: a chunk
// transaction has one signer and one instruction referencing the state
// account; each signature claim costs claim bytes in instruction data plus
// a precompile entry in the transaction.
const (
	// maxClaimsPerChunk is how many signature verifications fit per
	// chunk transaction alongside some data.
	maxClaimsPerChunk = 4
	// claimDataBytes is the in-instruction footprint of one claim.
	claimDataBytes = 32 + 2 + 32
	// chunkEnvelope is the OpChunk framing: op, buffer id, data length,
	// claim count.
	chunkEnvelope = 1 + 8 + 4 + 2
)

// chunkDataCapacity returns how many payload bytes fit in a chunk
// transaction carrying nClaims signature claims under the builder's host
// profile.
func (b *TxBuilder) chunkDataCapacity(nClaims int) int {
	room := b.Profile.MaxInstructionData(1, 1) - chunkEnvelope - nClaims*claimDataBytes
	// Each claim also adds a precompile entry to the transaction itself.
	room -= nClaims * (64 + 32 + 14 + 32)
	if room < 0 {
		return 0
	}
	return room
}

// ChunkedUpload builds the transaction sequence that stages payload (with
// the given signature batch) and finishes with the commit instruction
// carrying commitOp. This is the multi-transaction pattern behind the
// "36.5 transactions per light-client update" statistic (§V-A).
func (b *TxBuilder) ChunkedUpload(commitOp byte, clientID ibc.ClientID, payload []byte, sigs []SigBatch, label string) []*host.Transaction {
	bufID := b.nextBuffer
	b.nextBuffer++

	var txs []*host.Transaction
	remaining := payload
	pendingSigs := sigs

	for len(remaining) > 0 || len(pendingSigs) > 0 {
		n := len(pendingSigs)
		// Roomy profiles can take every claim in one transaction; the
		// Solana profile fits only a handful per chunk.
		maxClaims := maxClaimsPerChunk
		if b.Profile.MaxTransactionSize > 8*host.MaxTransactionSize {
			maxClaims = b.Profile.MaxSignatures - 1
		}
		if n > maxClaims {
			n = maxClaims
		}
		capacity := b.chunkDataCapacity(n)
		d := len(remaining)
		if d > capacity {
			d = capacity
		}
		args := &ChunkArgs{BufferID: bufID, Data: remaining[:d]}
		tx := b.tx(label+"/chunk", nil)
		for _, s := range pendingSigs[:n] {
			args.SigClaims = append(args.SigClaims, SigClaim{Pub: s.Pub, Payload: s.Payload})
			tx.PrecompileSigs = append(tx.PrecompileSigs, host.SigVerify{Pub: s.Pub, Msg: s.Payload, Sig: s.Sig})
		}
		tx.Instructions[0].Data = EncodeChunk(args)
		txs = append(txs, tx)
		remaining = remaining[d:]
		pendingSigs = pendingSigs[n:]
	}

	commit := b.tx(label+"/commit", EncodeCommit(commitOp, &CommitArgs{BufferID: bufID, ClientID: clientID}))
	txs = append(txs, commit)
	return txs
}

// UpdateClientTxs stages a light-client update (header bytes plus the
// commit signatures the runtime must verify) and commits it.
func (b *TxBuilder) UpdateClientTxs(clientID ibc.ClientID, header []byte, sigs []SigBatch) []*host.Transaction {
	return b.ChunkedUpload(OpCommitUpdateClient, clientID, MarshalUpdateClientPayload(header), sigs, "client-update")
}

// RecvPacketTxs stages an incoming packet with its proof and commits it
// (the 4-5 transaction flow of §V-A).
func (b *TxBuilder) RecvPacketTxs(p *RecvPayload) []*host.Transaction {
	return b.ChunkedUpload(OpCommitRecvPacket, "", MarshalRecvPayload(p), nil, "recv-packet")
}

// AckPacketTxs stages an acknowledgement with its proof and commits it.
func (b *TxBuilder) AckPacketTxs(p *AckPayload) []*host.Transaction {
	return b.ChunkedUpload(OpCommitAck, "", MarshalAckPayload(p), nil, "ack-packet")
}

// TimeoutPacketTxs stages a timeout proof and commits it.
func (b *TxBuilder) TimeoutPacketTxs(p *TimeoutPayload) []*host.Transaction {
	return b.ChunkedUpload(OpCommitTimeout, "", MarshalTimeoutPayload(p), nil, "timeout-packet")
}
