// Package stats computes the summary statistics the evaluation reports:
// quantiles, means and standard deviations, Pearson correlation, empirical
// CDFs, and simple text histograms for rendering the paper's figures on a
// terminal.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the statistics Table I reports per validator.
type Summary struct {
	N                 int
	Min, Q1, Med, Q3  float64
	Max, Mean, StdDev float64
}

// Summarize computes a Summary of xs; it returns a zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sumSq float64
	for _, x := range s {
		sum += x
		sumSq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Med:    Quantile(s, 0.50),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}
}

// Quantile returns the q-quantile (0..1) of sorted xs using linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// QuantileUnsorted sorts a copy and returns the q-quantile.
func QuantileUnsorted(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Quantile(s, q)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	return Summarize(xs).StdDev
}

// Pearson returns the correlation coefficient of paired samples; the paper
// reports cost↔latency correlation 0.007 across validators (§V-C).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// FractionBelow is an alias for At, reading as "fraction of samples <= x".
func (e *ECDF) FractionBelow(x float64) float64 { return e.At(x) }

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF curves
// of Figs. 2 and 4.
func (e *ECDF) Points(n int) [][2]float64 {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i+1) / float64(n)
		out = append(out, [2]float64{Quantile(e.sorted, q), q})
	}
	return out
}

// Histogram bins samples into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram with the given bucket count.
func NewHistogram(xs []float64, buckets int, min, max float64) *Histogram {
	h := &Histogram{Min: min, Max: max, Counts: make([]int, buckets)}
	if max <= min || buckets == 0 {
		return h
	}
	width := (max - min) / float64(buckets)
	for _, x := range xs {
		idx := int((x - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= buckets {
			idx = buckets - 1
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Render draws the histogram as text rows ("lo-hi | #### count").
func (h *Histogram) Render(unit string) string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*width
		hi := lo + width
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "%8.2f-%8.2f %s | %-40s %d\n", lo, hi, unit, strings.Repeat("#", bar), c)
	}
	return b.String()
}
