package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Med != 3 || s.Mean != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if !almost(s.Q1, 2, 1e-9) || !almost(s.Q3, 4, 1e-9) {
		t.Fatalf("quartiles: %+v", s)
	}
	if !almost(s.StdDev, math.Sqrt(2), 1e-9) {
		t.Fatalf("sd = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.5); !almost(q, 5, 1e-9) {
		t.Fatalf("q50 = %v", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-9) {
		t.Fatalf("perfect corr = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-9) {
		t.Fatalf("perfect anti-corr = %v", r)
	}
	flat := []float64{5, 5, 5, 5}
	if r := Pearson(xs, flat); !math.IsNaN(r) {
		t.Fatalf("corr with constant = %v, want NaN", r)
	}
}

func TestPearsonIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 10_000; i++ {
		xs = append(xs, rng.Float64())
		ys = append(ys, rng.Float64())
	}
	if r := Pearson(xs, ys); math.Abs(r) > 0.05 {
		t.Fatalf("independent corr = %v", r)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if got := e.At(2); !almost(got, 0.5, 1e-9) {
		t.Fatalf("At(2) = %v", got)
	}
	if got := e.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := e.At(4); got != 1 {
		t.Fatalf("At(4) = %v", got)
	}
	if got := e.At(2.5); !almost(got, 0.5, 1e-9) {
		t.Fatalf("At(2.5) = %v", got)
	}
	pts := e.Points(4)
	if len(pts) != 4 || pts[3][1] != 1 {
		t.Fatalf("points: %v", pts)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 9.9, -3, 42}, 10, 0, 10)
	if h.Total != 6 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts[0] != 2 { // 0.5 and the clamped -3
		t.Fatalf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Fatalf("bucket 1 = %d", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and the clamped 42
		t.Fatalf("bucket 9 = %d", h.Counts[9])
	}
	if out := h.Render("s"); out == "" {
		t.Fatal("empty render")
	}
}

func TestQuickQuantilesMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Med && s.Med <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
