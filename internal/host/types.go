// Package host simulates the host blockchain the guest blockchain runs on.
// It models the Solana constraints that shaped the paper's implementation
// (§IV): the 1232-byte transaction size limit, the 1.4M compute-unit budget,
// per-signature base fees, priority fees and Jito-style bundle tips,
// rent-exempt deposits for account storage, ~400 ms slots, and an event log
// that off-chain actors (validators, relayers, fishermen) poll.
//
// The simulation is faithful where the paper's evaluation depends on it —
// fees, size limits, compute metering, slot timing — and deliberately
// simple elsewhere (no gossip, no leader schedule, no forks): the paper
// treats the host as a reliable serialised executor and so do we.
package host

import (
	"sync"
	"time"

	"repro/internal/cryptoutil"
)

// Lamports is the host chain's native fee unit (1 SOL = 1e9 lamports).
type Lamports uint64

// Host chain constants mirroring Solana mainnet parameters referenced in
// the paper (§IV, §V-D).
const (
	// LamportsPerSOL converts SOL to lamports.
	LamportsPerSOL Lamports = 1_000_000_000

	// MaxTransactionSize is the serialized transaction size limit in
	// bytes. Payloads larger than this must be chunked across
	// transactions, which is why light-client updates take ~36.5
	// transactions (§V-A).
	MaxTransactionSize = 1232

	// MaxComputeUnits is the per-transaction compute budget. It prevents
	// implementing heavy cryptography in-contract (§IV).
	MaxComputeUnits = 1_400_000

	// MaxHeapBytes is the default heap size available to a program
	// invocation (§IV).
	MaxHeapBytes = 32 * 1024

	// MaxAccountSize is the largest possible account (10 MiB, §V-D).
	MaxAccountSize = 10 * 1024 * 1024

	// BaseFeePerSignature is the flat fee per transaction signature
	// (5000 lamports ≈ 0.1 ¢ at $200/SOL, matching §V-B).
	BaseFeePerSignature Lamports = 5000

	// SlotDuration is the host block time (~400 ms on Solana).
	SlotDuration = 400 * time.Millisecond

	// MaxSignaturesPerTransaction bounds how many signatures fit in one
	// transaction (each signature is 64 bytes of the 1232 budget; see
	// the paper's reference [32]).
	MaxSignaturesPerTransaction = 12

	// BlockComputeBudget is the aggregate compute budget per slot.
	BlockComputeBudget = 48_000_000

	// rentLamportsPerByteYear and rentExemptionYears give the deposit
	// needed to make an account rent-exempt:
	// (128 + size) * 3480 * 2 lamports. For a 10 MiB account this is
	// ≈ 73 SOL ≈ $14.6k at $200/SOL, matching §V-D.
	rentLamportsPerByteYear Lamports = 3480
	rentExemptionYears               = 2
	accountStorageOverhead           = 128
)

// RentExemptBalance returns the deposit required to hold an account of the
// given data size indefinitely.
func RentExemptBalance(dataSize int) Lamports {
	return Lamports(accountStorageOverhead+dataSize) * rentLamportsPerByteYear * rentExemptionYears
}

// ProgramID identifies an on-chain program. Program IDs live in the same
// key space as accounts.
type ProgramID = cryptoutil.PubKey

// Slot is a host block height.
type Slot uint64

// Clock abstracts time so the simulator can drive the chain on a virtual
// clock while examples run it on short real delays.
type Clock interface {
	Now() time.Time
}

// ManualClock is a Clock advanced explicitly; the zero value starts at the
// Unix epoch. Reads and writes are synchronised so worker goroutines may
// observe the clock while the simulation loop advances it.
type ManualClock struct {
	mu sync.RWMutex
	t  time.Time
}

// NewManualClock returns a clock starting at start.
func NewManualClock(start time.Time) *ManualClock { return &ManualClock{t: start} }

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// Set jumps the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}
