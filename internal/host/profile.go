package host

import "time"

// Profile captures the host-chain runtime constraints the guest blockchain
// must live within. The paper's deployment target is Solana (§IV), whose
// restrictive profile forces chunked uploads and precompile signature
// verification; §VI-D argues the design ports to other IBC-incompatible
// hosts (NEAR, TRON) whose looser profiles need none of those workarounds.
// The experiments compare guest behaviour across profiles.
type Profile struct {
	// Name labels the profile in experiment output.
	Name string
	// MaxTransactionSize is the serialized transaction limit in bytes.
	MaxTransactionSize int
	// MaxComputeUnits is the per-transaction compute budget.
	MaxComputeUnits uint64
	// MaxSignatures bounds fee-bearing signatures per transaction.
	MaxSignatures int
	// BaseFeePerSignature is the flat per-signature fee.
	BaseFeePerSignature Lamports
	// SlotDuration is the block time.
	SlotDuration time.Duration
	// BlockComputeBudget is the per-slot compute capacity.
	BlockComputeBudget uint64
}

// SolanaProfile returns the paper's deployment constraints (§IV).
func SolanaProfile() Profile {
	return Profile{
		Name:                "solana",
		MaxTransactionSize:  MaxTransactionSize,
		MaxComputeUnits:     MaxComputeUnits,
		MaxSignatures:       MaxSignaturesPerTransaction,
		BaseFeePerSignature: BaseFeePerSignature,
		SlotDuration:        SlotDuration,
		BlockComputeBudget:  BlockComputeBudget,
	}
}

// NEARLikeProfile models a NEAR-style host (§VI-D): roomy transactions
// (receipts up to megabytes), a 1-second block time, and a large gas
// budget. NEAR's missing IBC feature is block-hash introspection, which
// the Guest Contract supplies by tracking past guest blocks — no chunking
// is needed.
func NEARLikeProfile() Profile {
	return Profile{
		Name:                "near-like",
		MaxTransactionSize:  512 * 1024,
		MaxComputeUnits:     300_000_000,
		MaxSignatures:       128,
		BaseFeePerSignature: 1_000,
		SlotDuration:        time.Second,
		BlockComputeBudget:  1_000_000_000,
	}
}

// TRONLikeProfile models a TRON-style host (§VI-D): 3-second blocks and
// generous transaction sizes. TRON's missing feature is state proofs,
// which the sealable trie supplies.
func TRONLikeProfile() Profile {
	return Profile{
		Name:                "tron-like",
		MaxTransactionSize:  128 * 1024,
		MaxComputeUnits:     100_000_000,
		MaxSignatures:       64,
		BaseFeePerSignature: 2_000,
		SlotDuration:        3 * time.Second,
		BlockComputeBudget:  500_000_000,
	}
}

// MaxInstructionData returns how many bytes of single-instruction data fit
// in a transaction under this profile.
func (p Profile) MaxInstructionData(numSigners, numAccounts int) int {
	n := p.MaxTransactionSize - txOverhead - numSigners*signatureSize
	n -= 32 + 1 + numAccounts*32 + 2
	if n < 0 {
		return 0
	}
	return n
}
