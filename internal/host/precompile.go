package host

import (
	"fmt"

	"repro/internal/cryptoutil"
)

// SigVerify is an Ed25519 verification request carried at transaction level
// — the analogue of Solana's native ed25519 program. Verification happens
// before instructions execute and is charged per signature in fees (the
// "additional 0.1 ¢ per signature" of §V-B) and in transaction size, but
// not in compute units. This is the workaround that makes checking dozens
// of validator signatures feasible under the 1.4M CU budget (§IV).
type SigVerify struct {
	Pub cryptoutil.PubKey
	Msg []byte
	Sig cryptoutil.Signature
}

// precompileSigSize is the serialized footprint of one verification
// request: signature (64) + pubkey (32) + offsets/length header (14).
func precompileSigSize(msgLen int) int { return 64 + 32 + 14 + msgLen }

// Verified reports whether the request's signature is valid.
func (s *SigVerify) Verified() bool {
	return cryptoutil.Verify(s.Pub, s.Msg, s.Sig)
}

// digest identifies a verified (pubkey, message) pair.
func (s *SigVerify) digest() cryptoutil.Hash {
	return cryptoutil.HashTagged('P', s.Pub[:], s.Msg)
}

// PrecompileVerified reports whether the current transaction carried a
// valid precompile verification of (pub, msg). Programs use this instead of
// in-contract verification when the compute budget would not allow it.
func (ctx *ExecContext) PrecompileVerified(pub cryptoutil.PubKey, msg []byte) bool {
	probe := SigVerify{Pub: pub, Msg: msg}
	return ctx.verified[probe.digest()]
}

// runPrecompiles verifies all transaction-level signature requests,
// returning the set of verified digests or an error that fails the tx.
// Like the real runtime — which verifies a transaction's signatures before
// scheduling it — the requests are checked as one batch across the worker
// pool, with the shared cache absorbing re-submissions of the same chunked
// light-client update.
func runPrecompiles(tx *Transaction) (map[cryptoutil.Hash]bool, error) {
	if len(tx.PrecompileSigs) == 0 {
		return nil, nil
	}
	verifier := cryptoutil.DefaultBatchVerifier()
	tasks := make([]cryptoutil.VerifyTask, len(tx.PrecompileSigs))
	for i := range tx.PrecompileSigs {
		sv := &tx.PrecompileSigs[i]
		tasks[i] = cryptoutil.VerifyTask{Pub: sv.Pub, Msg: sv.Msg, Sig: sv.Sig}
	}
	if !verifier.VerifyAll(tasks) {
		for i, t := range tasks {
			if !verifier.Verify(t) {
				return nil, fmt.Errorf("host: precompile signature %d invalid", i)
			}
		}
	}
	out := make(map[cryptoutil.Hash]bool, len(tx.PrecompileSigs))
	for i := range tx.PrecompileSigs {
		out[tx.PrecompileSigs[i].digest()] = true
	}
	return out, nil
}
