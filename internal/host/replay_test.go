package host

import (
	"errors"
	"testing"
)

func TestSubmitRejectsReplayedTransaction(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	tx := call(prog, payer, 1)
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(tx); !errors.Is(err, ErrDuplicateTransaction) {
		t.Fatalf("resubmit = %v, want ErrDuplicateTransaction", err)
	}
	// Still a duplicate after the original executed.
	c.ProduceBlock()
	if err := c.Submit(tx); !errors.Is(err, ErrDuplicateTransaction) {
		t.Fatalf("resubmit after execution = %v, want ErrDuplicateTransaction", err)
	}
	// A fresh transaction with identical contents is not a replay.
	if err := c.Submit(call(prog, payer, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestReplayWindowAgesOut(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	first := call(prog, payer, 1)
	if err := c.Submit(first); err != nil {
		t.Fatal(err)
	}
	c.ProduceBlock()
	for i := 0; i < seenTxWindow; i++ {
		if err := c.Submit(call(prog, payer, 4)); err != nil {
			t.Fatal(err)
		}
		if i%512 == 0 {
			c.ProduceBlock()
		}
	}
	// The window rolled over: the oldest entry is forgotten.
	if err := c.Submit(first); err != nil {
		t.Fatalf("aged-out tx rejected: %v", err)
	}
}
