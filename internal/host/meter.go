package host

import "fmt"

// Compute-unit costs for common operations, loosely mirroring Solana's
// syscall pricing. The absolute values matter only in that they make the
// 1.4M budget a binding constraint for large payloads, which is what forces
// chunked light-client updates.
const (
	// CUPerSHA256Block is charged per 64-byte block hashed.
	CUPerSHA256Block = 85
	// CUPerEd25519Verify is charged when a program asks the runtime to
	// verify a signature via the precompile path.
	CUPerEd25519Verify = 30_000
	// CUPerTrieNode is charged per trie node visited or written.
	CUPerTrieNode = 1_200
	// CUPerByteWritten is charged per byte written to account data.
	CUPerByteWritten = 10
	// CUBaseInstruction is the flat per-instruction charge.
	CUBaseInstruction = 5_000
)

// ComputeMeter tracks compute-unit consumption for one transaction.
type ComputeMeter struct {
	limit uint64
	used  uint64
}

// NewComputeMeter returns a meter with the given budget.
func NewComputeMeter(limit uint64) *ComputeMeter {
	return &ComputeMeter{limit: limit}
}

// Consume charges n units and fails once the budget is exhausted.
func (m *ComputeMeter) Consume(n uint64) error {
	m.used += n
	if m.used > m.limit {
		return fmt.Errorf("%w: used %d of %d", ErrComputeBudgetExceeded, m.used, m.limit)
	}
	return nil
}

// ConsumeHash charges for hashing n bytes.
func (m *ComputeMeter) ConsumeHash(n int) error {
	blocks := uint64(n/64) + 1
	return m.Consume(blocks * CUPerSHA256Block)
}

// Used returns the units consumed so far.
func (m *ComputeMeter) Used() uint64 { return m.used }

// Remaining returns the unused budget.
func (m *ComputeMeter) Remaining() uint64 {
	if m.used >= m.limit {
		return 0
	}
	return m.limit - m.used
}

// HeapMeter tracks program heap allocation against the 32 KiB default.
type HeapMeter struct {
	limit int
	used  int
}

// NewHeapMeter returns a meter with the given byte limit.
func NewHeapMeter(limit int) *HeapMeter { return &HeapMeter{limit: limit} }

// Alloc charges n bytes of heap.
func (m *HeapMeter) Alloc(n int) error {
	m.used += n
	if m.used > m.limit {
		return fmt.Errorf("%w: %d of %d bytes", ErrHeapExhausted, m.used, m.limit)
	}
	return nil
}

// Used returns bytes allocated so far.
func (m *HeapMeter) Used() int { return m.used }
