package host

import "errors"

// Errors returned by the host chain.
var (
	// ErrTxTooLarge is returned when a transaction exceeds
	// MaxTransactionSize.
	ErrTxTooLarge = errors.New("host: transaction exceeds size limit")
	// ErrTooManySignatures is returned when a transaction carries more
	// signatures than fit.
	ErrTooManySignatures = errors.New("host: too many signatures")
	// ErrComputeBudgetExceeded is returned when execution runs out of
	// compute units.
	ErrComputeBudgetExceeded = errors.New("host: compute budget exceeded")
	// ErrHeapExhausted is returned when a program exceeds its heap limit.
	ErrHeapExhausted = errors.New("host: heap limit exceeded")
	// ErrUnknownProgram is returned when an instruction targets an
	// unregistered program.
	ErrUnknownProgram = errors.New("host: unknown program")
	// ErrUnknownAccount is returned when a referenced account does not
	// exist.
	ErrUnknownAccount = errors.New("host: unknown account")
	// ErrInsufficientFunds is returned when the fee payer cannot cover
	// fees or a transfer.
	ErrInsufficientFunds = errors.New("host: insufficient funds")
	// ErrAccountTooLarge is returned when an account would exceed the
	// 10 MiB limit.
	ErrAccountTooLarge = errors.New("host: account too large")
	// ErrNotRentExempt is returned when an account creation does not
	// carry the rent-exempt deposit.
	ErrNotRentExempt = errors.New("host: deposit below rent-exempt minimum")
	// ErrMissingSigner is returned when a required signer did not sign.
	ErrMissingSigner = errors.New("host: missing required signer")
	// ErrDuplicateTransaction is returned when a transaction is submitted
	// again after the chain already accepted it — the replay protection
	// that lets network-level retries compose with at-most-once execution.
	ErrDuplicateTransaction = errors.New("host: duplicate transaction")
	// ErrMempoolFull is returned by Submit when the mempool admission
	// limit is reached. Open-loop load generators treat it as an explicit
	// reject signal (backpressure) instead of queueing without bound.
	ErrMempoolFull = errors.New("host: mempool full")
	// ErrDeadlineExceeded marks a transaction shed from the mempool
	// because its deadline passed before it could be included in a block.
	ErrDeadlineExceeded = errors.New("host: transaction deadline exceeded")
)
