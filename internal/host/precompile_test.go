package host

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// precompileProbe checks PrecompileVerified inside execution.
type precompileProbe struct {
	id  ProgramID
	pub cryptoutil.PubKey
	msg []byte
	// sawVerified records what the program observed.
	sawVerified bool
}

func (p *precompileProbe) ID() ProgramID { return p.id }
func (p *precompileProbe) Execute(ctx *ExecContext, _ Instruction) error {
	p.sawVerified = ctx.PrecompileVerified(p.pub, p.msg)
	return nil
}

func TestPrecompileVerifiedVisibleToProgram(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	c := NewChain(clock)
	payer := cryptoutil.GenerateKey("pp-payer").Public()
	c.Fund(payer, LamportsPerSOL)

	key := cryptoutil.GenerateKey("pp-signer")
	msg := []byte("attest this")
	probe := &precompileProbe{id: cryptoutil.GenerateKey("pp-prog").Public(), pub: key.Public(), msg: msg}
	c.RegisterProgram(probe)

	tx := &Transaction{
		FeePayer:       payer,
		Instructions:   []Instruction{{Program: probe.id}},
		PrecompileSigs: []SigVerify{{Pub: key.Public(), Msg: msg, Sig: key.Sign(msg)}},
	}
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	b := c.ProduceBlock()
	if b.Results[0].Err != nil {
		t.Fatal(b.Results[0].Err)
	}
	if !probe.sawVerified {
		t.Fatal("program did not see the precompile verification")
	}
	// Per-signature fee charged: 1 payer + 1 precompile.
	if b.Results[0].Fee != 2*BaseFeePerSignature {
		t.Fatalf("fee = %d, want %d", b.Results[0].Fee, 2*BaseFeePerSignature)
	}
}

func TestPrecompileInvalidSignatureFailsTx(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	c := NewChain(clock)
	payer := cryptoutil.GenerateKey("pp-payer2").Public()
	c.Fund(payer, LamportsPerSOL)

	key := cryptoutil.GenerateKey("pp-signer2")
	probe := &precompileProbe{id: cryptoutil.GenerateKey("pp-prog2").Public(), pub: key.Public(), msg: []byte("m")}
	c.RegisterProgram(probe)

	bad := key.Sign([]byte("m"))
	bad[0] ^= 0xff
	tx := &Transaction{
		FeePayer:       payer,
		Instructions:   []Instruction{{Program: probe.id}},
		PrecompileSigs: []SigVerify{{Pub: key.Public(), Msg: []byte("m"), Sig: bad}},
	}
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	b := c.ProduceBlock()
	if b.Results[0].Err == nil {
		t.Fatal("invalid precompile signature did not fail the tx")
	}
	if probe.sawVerified {
		t.Fatal("program executed despite precompile failure")
	}
}

func TestPrecompileUnrelatedClaimNotVerified(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	c := NewChain(clock)
	payer := cryptoutil.GenerateKey("pp-payer3").Public()
	c.Fund(payer, LamportsPerSOL)

	signer := cryptoutil.GenerateKey("pp-signer3")
	otherMsg := []byte("other message")
	// The program probes for a pair that the tx did NOT verify.
	probe := &precompileProbe{id: cryptoutil.GenerateKey("pp-prog3").Public(), pub: signer.Public(), msg: otherMsg}
	c.RegisterProgram(probe)

	msg := []byte("actual message")
	tx := &Transaction{
		FeePayer:       payer,
		Instructions:   []Instruction{{Program: probe.id}},
		PrecompileSigs: []SigVerify{{Pub: signer.Public(), Msg: msg, Sig: signer.Sign(msg)}},
	}
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	b := c.ProduceBlock()
	if b.Results[0].Err != nil {
		t.Fatal(b.Results[0].Err)
	}
	if probe.sawVerified {
		t.Fatal("program saw a verification for a message that was not covered")
	}
}

func TestPrecompileCountsTowardSignatureLimit(t *testing.T) {
	key := cryptoutil.GenerateKey("pp-many")
	tx := &Transaction{
		FeePayer:     cryptoutil.GenerateKey("pp-payer4").Public(),
		Instructions: []Instruction{{Data: []byte{1}}},
	}
	for i := 0; i < MaxSignaturesPerTransaction; i++ {
		msg := []byte{byte(i)}
		tx.PrecompileSigs = append(tx.PrecompileSigs, SigVerify{Pub: key.Public(), Msg: msg, Sig: key.Sign(msg)})
	}
	if err := tx.Validate(); !errors.Is(err, ErrTooManySignatures) {
		t.Fatalf("Validate = %v, want ErrTooManySignatures", err)
	}
}

// burnProgram consumes a configurable amount of compute.
type burnProgram struct {
	id    ProgramID
	units uint64
}

func (p *burnProgram) ID() ProgramID { return p.id }
func (p *burnProgram) Execute(ctx *ExecContext, _ Instruction) error {
	return ctx.Meter.Consume(p.units)
}

func TestBlockComputeBudgetSpillsToNextSlot(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	c := NewChain(clock)
	payer := cryptoutil.GenerateKey("burn-payer").Public()
	c.Fund(payer, 100*LamportsPerSOL)

	// Each tx burns ~1.3M CU; the 48M block budget fits ~37 of them.
	prog := &burnProgram{id: cryptoutil.GenerateKey("burn-prog").Public(), units: 1_300_000}
	c.RegisterProgram(prog)
	const n = 60
	for i := 0; i < n; i++ {
		tx := &Transaction{FeePayer: payer, Instructions: []Instruction{{Program: prog.id}}}
		if err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	b1 := c.ProduceBlock()
	if len(b1.Results) >= n {
		t.Fatalf("block executed all %d heavy txs; budget not enforced", n)
	}
	if c.PendingCount() == 0 {
		t.Fatal("no spillover to the next slot")
	}
	clock.Advance(SlotDuration)
	b2 := c.ProduceBlock()
	if len(b1.Results)+len(b2.Results) != n {
		clock.Advance(SlotDuration)
		b3 := c.ProduceBlock()
		if len(b1.Results)+len(b2.Results)+len(b3.Results) != n {
			t.Fatalf("lost transactions: %d + %d + %d != %d",
				len(b1.Results), len(b2.Results), len(b3.Results), n)
		}
	}
}
