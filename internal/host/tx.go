package host

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
)

// Instruction is one program invocation inside a transaction.
type Instruction struct {
	Program  ProgramID
	Accounts []cryptoutil.PubKey
	Data     []byte
}

// size returns the serialized footprint of the instruction: program id,
// account references, and data with short length prefixes.
func (in *Instruction) size() int {
	return 32 + 1 + len(in.Accounts)*32 + 2 + len(in.Data)
}

// Transaction bundles instructions with fee information. Signatures are
// modelled as the list of signer keys; the simulator trusts submission
// integrity (off-chain actors sign guest-level data explicitly instead).
type Transaction struct {
	// FeePayer pays base, priority and tip fees; always counted as the
	// first signer.
	FeePayer cryptoutil.PubKey
	// ExtraSigners are additional transaction-level signers.
	ExtraSigners []cryptoutil.PubKey
	// Instructions run in order; the transaction is atomic.
	Instructions []Instruction
	// PriorityFee is an optional tip to the block producer paid from the
	// fee payer (Solana "priority fees", §VI-B).
	PriorityFee Lamports
	// BundleTip models Jito-style bundle tips (§V-A, reference [35]); it
	// is an alternative prioritisation channel with its own accounting.
	BundleTip Lamports
	// PrecompileSigs are transaction-level Ed25519 verifications (the
	// native ed25519 program); each is charged the per-signature fee.
	PrecompileSigs []SigVerify

	// Label annotates the transaction for experiment bookkeeping (e.g.
	// "send-packet", "sign", "client-update"); it has no on-chain size.
	Label string

	// Deadline, when non-zero, lets the mempool shed this transaction
	// instead of executing it once the block time passes the deadline
	// (open-loop load shedding: stale work is dropped, not serviced).
	// It models a recent-blockhash expiry and has no on-chain size.
	Deadline time.Time
	// OnShed, when set, is invoked (outside the chain lock) after the
	// transaction is deadline-shed, so the submitter can roll back any
	// off-chain bookkeeping tied to it (e.g. a transfer escrow).
	OnShed func(*Transaction)
}

// txOverhead approximates the fixed serialized overhead of a transaction:
// recent blockhash, message header, and compact array prefixes.
const txOverhead = 64

// signatureSize is the serialized size of one signature.
const signatureSize = 64

// NumSignatures returns the number of fee-bearing signatures: transaction
// signers plus precompile verification requests.
func (tx *Transaction) NumSignatures() int {
	return 1 + len(tx.ExtraSigners) + len(tx.PrecompileSigs)
}

// Size returns the serialized transaction size in bytes.
func (tx *Transaction) Size() int {
	n := txOverhead + (1+len(tx.ExtraSigners))*signatureSize
	// Fee payer + distinct account/program references are part of the
	// message; a precise dedup is unnecessary for the size model, count
	// per instruction.
	for i := range tx.Instructions {
		n += tx.Instructions[i].size()
	}
	for i := range tx.PrecompileSigs {
		n += precompileSigSize(len(tx.PrecompileSigs[i].Msg))
	}
	return n
}

// Fee returns the total fee the fee payer is charged on execution under
// the Solana profile.
func (tx *Transaction) Fee() Lamports {
	return tx.FeeProfile(SolanaProfile())
}

// FeeProfile computes the fee under a given host profile.
func (tx *Transaction) FeeProfile(p Profile) Lamports {
	return p.BaseFeePerSignature*Lamports(tx.NumSignatures()) + tx.PriorityFee + tx.BundleTip
}

// Validate checks static transaction limits under the Solana profile.
func (tx *Transaction) Validate() error {
	return tx.ValidateProfile(SolanaProfile())
}

// ValidateProfile checks static transaction limits under a host profile.
func (tx *Transaction) ValidateProfile(p Profile) error {
	if tx.FeePayer.IsZero() {
		return fmt.Errorf("host: transaction without fee payer")
	}
	if len(tx.Instructions) == 0 {
		return fmt.Errorf("host: transaction without instructions")
	}
	if tx.NumSignatures() > p.MaxSignatures {
		return fmt.Errorf("%w: %d > %d", ErrTooManySignatures, tx.NumSignatures(), p.MaxSignatures)
	}
	if s := tx.Size(); s > p.MaxTransactionSize {
		return fmt.Errorf("%w: %d > %d bytes", ErrTxTooLarge, s, p.MaxTransactionSize)
	}
	return nil
}

// MaxInstructionData returns how many bytes of instruction data fit in a
// transaction with the given signer count and account references, assuming
// a single instruction. Chunking clients use this to size their chunks.
func MaxInstructionData(numSigners, numAccounts int) int {
	n := MaxTransactionSize - txOverhead - numSigners*signatureSize
	n -= 32 + 1 + numAccounts*32 + 2
	if n < 0 {
		return 0
	}
	return n
}

// TxResult records the outcome of an executed transaction.
type TxResult struct {
	Slot     Slot
	Index    int
	Label    string
	Err      error
	Fee      Lamports
	Units    uint64 // compute units consumed
	NumSigs  int
	Size     int
	FeePayer cryptoutil.PubKey
}
