package host

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/telemetry"
)

func TestMempoolLimitRejects(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)
	c.SetMempoolLimit(2)

	if free := c.MempoolFree(); free != 2 {
		t.Fatalf("MempoolFree = %d, want 2", free)
	}
	for i := 0; i < 2; i++ {
		tx := call(prog, payer, 1)
		tx.PriorityFee = Lamports(i) // distinct hashes
		if err := c.Submit(tx); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if free := c.MempoolFree(); free != 0 {
		t.Fatalf("MempoolFree = %d, want 0", free)
	}
	over := call(prog, payer, 1)
	over.PriorityFee = 99
	if err := c.Submit(over); !errors.Is(err, ErrMempoolFull) {
		t.Fatalf("overflow submit: err = %v, want ErrMempoolFull", err)
	}
	if got := reg.Counter("host.mempool_rejected").Value(); got != 1 {
		t.Fatalf("mempool_rejected = %d, want 1", got)
	}

	// Draining the mempool frees admission slots again.
	b := c.ProduceBlock()
	if len(b.Results) != 2 {
		t.Fatalf("block results = %d, want 2", len(b.Results))
	}
	if free := c.MempoolFree(); free != 2 {
		t.Fatalf("MempoolFree after block = %d, want 2", free)
	}
	if err := c.Submit(over); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestMempoolUnlimitedByDefault(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	if free := c.MempoolFree(); free != -1 {
		t.Fatalf("MempoolFree = %d, want -1 (unlimited)", free)
	}
	for i := 0; i < 64; i++ {
		tx := call(prog, payer, 1)
		tx.PriorityFee = Lamports(i)
		if err := c.Submit(tx); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

func TestDeadlineShedding(t *testing.T) {
	c, clock, prog, payer := newTestChain(t)
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)

	var shedLabels []string
	stale := call(prog, payer, 1)
	stale.Deadline = clock.Now().Add(1 * time.Second)
	stale.Label = "stale"
	stale.OnShed = func(tx *Transaction) { shedLabels = append(shedLabels, tx.Label) }
	fresh := call(prog, payer, 1)
	fresh.PriorityFee = 1
	fresh.Label = "fresh"
	fresh.Deadline = clock.Now().Add(1 * time.Hour)
	if err := c.Submit(stale); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(fresh); err != nil {
		t.Fatal(err)
	}

	clock.Advance(2 * time.Second)
	b := c.ProduceBlock()
	if len(b.Results) != 1 || b.Results[0].Label != "fresh" {
		t.Fatalf("block results: %+v", b.Results)
	}
	if got := reg.Counter("host.mempool_shed").Value(); got != 1 {
		t.Fatalf("mempool_shed = %d, want 1", got)
	}
	if len(shedLabels) != 1 || shedLabels[0] != "stale" {
		t.Fatalf("OnShed hooks ran for %v, want [stale]", shedLabels)
	}
	// The shed transaction paid no fee and mutated no state.
	st, err := c.StateOf(prog.account)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*counterState).n != 1 {
		t.Fatalf("counter = %d, want 1 (only fresh tx applied)", st.(*counterState).n)
	}
}

// TestShardedPreVerify exercises the parallel precompile pre-verification
// path with a block full of signature-bearing transactions from fee payers
// spread over the shard space, mixing valid and invalid signatures, and
// checks the outcome matches the serial semantics: valid ones execute,
// invalid ones fail with the precompile error, in priority order.
func TestShardedPreVerify(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	msg := []byte("pre-verify me")

	const n = 24
	wantErr := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		signer := cryptoutil.GenerateKey(string(rune('a'+i)) + "-signer")
		sv := SigVerify{Pub: signer.Public(), Msg: msg, Sig: signer.Sign(msg)}
		bad := i%3 == 0
		if bad {
			sv.Sig[0] ^= 0xff
		}
		// Spread fee payers across shard prefixes; each needs funds.
		fp := cryptoutil.GenerateKey(string(rune('A'+i)) + "-payer").Public()
		c.Fund(fp, LamportsPerSOL)
		tx := call(prog, fp, 1)
		tx.FeePayer = fp
		tx.PrecompileSigs = []SigVerify{sv}
		tx.Label = string(rune('a' + i))
		wantErr[tx.Label] = bad
		if err := c.Submit(tx); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_ = payer

	b := c.ProduceBlock()
	if len(b.Results) != n {
		t.Fatalf("block results = %d, want %d", len(b.Results), n)
	}
	okCount := 0
	for _, res := range b.Results {
		if wantErr[res.Label] {
			if res.Err == nil {
				t.Fatalf("tx %q: expected precompile failure, got success", res.Label)
			}
		} else {
			if res.Err != nil {
				t.Fatalf("tx %q: unexpected error %v", res.Label, res.Err)
			}
			okCount++
		}
	}
	st, err := c.StateOf(prog.account)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*counterState).n != okCount {
		t.Fatalf("counter = %d, want %d", st.(*counterState).n, okCount)
	}
}
