package host

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/telemetry"
)

// Program is a smart contract registered on the host chain.
type Program interface {
	// ID returns the program's address.
	ID() ProgramID
	// Execute runs one instruction. Mutations must go through ctx;
	// returning an error aborts the whole transaction.
	Execute(ctx *ExecContext, ins Instruction) error
}

// ExecContext is the environment a program executes in.
type ExecContext struct {
	chain   *Chain
	sink    *eventSink
	program ProgramID
	tx      *Transaction

	// Meter is the transaction's compute meter, shared by all
	// instructions.
	Meter *ComputeMeter
	// Heap is the per-invocation heap meter.
	Heap *HeapMeter
	// Slot is the slot being produced.
	Slot Slot
	// Time is the block timestamp.
	Time time.Time

	// signers is the set of transaction-level signers.
	signers map[cryptoutil.PubKey]bool
	// verified is the set of precompile-verified (pubkey, msg) digests.
	verified map[cryptoutil.Hash]bool
}

// Emit appends a typed event to the block log (dropped if the tx fails).
func (ctx *ExecContext) Emit(ev telemetry.Event) {
	ctx.sink.emit(ctx.program, ev)
}

// Account returns the account with the given key, or ErrUnknownAccount.
func (ctx *ExecContext) Account(key cryptoutil.PubKey) (*Account, error) {
	acc, ok := ctx.chain.accounts[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAccount, key.Short())
	}
	return acc, nil
}

// IsSigner reports whether key signed the current transaction.
func (ctx *ExecContext) IsSigner(key cryptoutil.PubKey) bool { return ctx.signers[key] }

// FeePayer returns the transaction's fee payer.
func (ctx *ExecContext) FeePayer() cryptoutil.PubKey { return ctx.tx.FeePayer }

// VerifySignature asks the runtime to verify an Ed25519 signature. It is
// charged at the precompile rate: in-contract verification would blow the
// compute budget (§IV), so like the paper's deployment we route through
// the runtime.
func (ctx *ExecContext) VerifySignature(pub cryptoutil.PubKey, msg []byte, sig cryptoutil.Signature) (bool, error) {
	if err := ctx.Meter.Consume(CUPerEd25519Verify); err != nil {
		return false, err
	}
	return cryptoutil.Verify(pub, msg, sig), nil
}

// Transfer moves lamports between accounts; the source must have signed.
func (ctx *ExecContext) Transfer(from, to cryptoutil.PubKey, amount Lamports) error {
	if !ctx.IsSigner(from) {
		return fmt.Errorf("%w: %s", ErrMissingSigner, from.Short())
	}
	src, err := ctx.Account(from)
	if err != nil {
		return err
	}
	if src.Lamports < amount {
		return fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficientFunds, from.Short(), src.Lamports, amount)
	}
	dst := ctx.chain.getOrCreateAccount(to)
	src.Lamports -= amount
	dst.Lamports += amount
	return nil
}

// Credit mints lamports into an account (program-internal accounting such
// as fee refunds; test funding goes through Chain.Fund).
func (ctx *ExecContext) Credit(to cryptoutil.PubKey, amount Lamports) {
	ctx.chain.getOrCreateAccount(to).Lamports += amount
}

// Debit removes lamports from an account owned by the executing program.
func (ctx *ExecContext) Debit(from cryptoutil.PubKey, amount Lamports) error {
	src, err := ctx.Account(from)
	if err != nil {
		return err
	}
	if src.Lamports < amount {
		return fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficientFunds, from.Short(), src.Lamports, amount)
	}
	src.Lamports -= amount
	return nil
}

// pendingTx is a queued transaction with its submission slot and, once the
// pre-verification stage has run, its cached precompile result.
type pendingTx struct {
	tx        *Transaction
	submitted Slot
	seq       int // arrival order tiebreak

	// preVerified caches the parallel precompile stage's output so a
	// transaction that waits several slots is verified exactly once.
	preVerified bool
	verified    map[cryptoutil.Hash]bool
	verifyErr   error
}

// Chain is the simulated host blockchain.
//
// Transactions are submitted into a mempool and executed at the next slot
// boundary, ordered by (bundle tip, priority fee, arrival). All methods are
// safe for concurrent use.
type Chain struct {
	mu sync.Mutex

	clock       Clock
	profile     Profile
	genesisTime time.Time
	slot        Slot
	accounts    map[cryptoutil.PubKey]*Account
	programs    map[ProgramID]Program
	mempool     []pendingTx
	seq         int

	// mempoolLimit bounds the admission queue (0 = unlimited). When the
	// queue is full, Submit rejects with ErrMempoolFull instead of growing
	// without bound — the bounded-queue half of the open-loop load
	// harness's admission control.
	mempoolLimit int

	// onSubmit, when set, is called after each successful Submit — the
	// simulation runner uses it to schedule on-demand block production.
	onSubmit func()

	// Replay protection: recently accepted transactions by identity, so a
	// retried submission (reply lost, tx landed) is rejected instead of
	// executed twice. A real chain dedups on the tx hash; the simulated
	// Transaction has no hash, so pointer identity plays that role.
	seenTxs    map[*Transaction]struct{}
	seenTxRing []*Transaction
	seenTxPos  int

	blocks []*Block
	// keepBlocks bounds retained history (0 = keep everything).
	keepBlocks int
	// prunedBlocks counts blocks discarded from the front of the history.
	prunedBlocks int

	// FeeCollector accumulates all fees charged (burned + tips).
	feesCollected Lamports

	// Telemetry instruments; nil (no-op) until SetTelemetry is called.
	txsSubmitted    *telemetry.Counter
	txsExecuted     *telemetry.Counter
	txsFailed       *telemetry.Counter
	feesCharged     *telemetry.Counter
	txCompute       *telemetry.Histogram
	mempoolDepth    *telemetry.Gauge
	mempoolRejected *telemetry.Counter
	mempoolShed     *telemetry.Counter
}

// NewChain creates a host chain on the given clock with the Solana
// profile (§IV).
func NewChain(clock Clock) *Chain {
	return NewChainWithProfile(clock, SolanaProfile())
}

// NewChainWithProfile creates a host chain with custom runtime constraints
// (§VI-D host portability).
func NewChainWithProfile(clock Clock, profile Profile) *Chain {
	return &Chain{
		clock:       clock,
		profile:     profile,
		genesisTime: clock.Now(),
		accounts:    make(map[cryptoutil.PubKey]*Account),
		programs:    make(map[ProgramID]Program),
	}
}

// Profile returns the chain's runtime constraints.
func (c *Chain) Profile() Profile { return c.profile }

// SetTelemetry registers the chain's transaction, fee, compute, and mempool
// instruments in reg under the "host." prefix.
func (c *Chain) SetTelemetry(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txsSubmitted = reg.Counter("host.txs_submitted")
	c.txsExecuted = reg.Counter("host.txs_executed")
	c.txsFailed = reg.Counter("host.txs_failed")
	c.feesCharged = reg.Counter("host.fees_lamports")
	c.txCompute = reg.Histogram("host.tx_compute_units")
	c.mempoolDepth = reg.Gauge("host.mempool_depth")
	c.mempoolRejected = reg.Counter("host.mempool_rejected")
	c.mempoolShed = reg.Counter("host.mempool_shed")
}

// SetMempoolLimit bounds the mempool admission queue; Submit rejects with
// ErrMempoolFull beyond it. 0 restores the unlimited default.
func (c *Chain) SetMempoolLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mempoolLimit = n
}

// MempoolFree returns how many more transactions the mempool admits before
// Submit starts rejecting, or -1 when the mempool is unlimited.
func (c *Chain) MempoolFree() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mempoolLimit <= 0 {
		return -1
	}
	free := c.mempoolLimit - len(c.mempool)
	if free < 0 {
		free = 0
	}
	return free
}

// SetSubmitHook registers a callback fired after each successful Submit.
func (c *Chain) SetSubmitHook(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onSubmit = fn
}

// SetBlockRetention bounds how many recent blocks the chain keeps; long
// simulations use this to keep memory flat.
func (c *Chain) SetBlockRetention(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keepBlocks = n
}

// RegisterProgram deploys a program.
func (c *Chain) RegisterProgram(p Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.programs[p.ID()] = p
}

// MoveLamports transfers between accounts outside a transaction (genesis
// and deployment wiring only; runtime transfers go through ExecContext).
func (c *Chain) MoveLamports(from, to cryptoutil.PubKey, amount Lamports) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.accounts[from]
	if !ok || src.Lamports < amount {
		return fmt.Errorf("%w: %s moving %d", ErrInsufficientFunds, from.Short(), amount)
	}
	src.Lamports -= amount
	c.getOrCreateAccount(to).Lamports += amount
	return nil
}

// Fund credits lamports to an account, creating it if needed (faucet).
func (c *Chain) Fund(key cryptoutil.PubKey, amount Lamports) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.getOrCreateAccount(key).Lamports += amount
}

// Balance returns an account's lamports (0 if absent).
func (c *Chain) Balance(key cryptoutil.PubKey) Lamports {
	c.mu.Lock()
	defer c.mu.Unlock()
	if acc, ok := c.accounts[key]; ok {
		return acc.Lamports
	}
	return 0
}

// CreateStateAccount creates a program-owned account with a declared size,
// funded with the rent-exempt deposit from payer. This models the paper's
// one-off 10 MiB allocation (§V-D).
func (c *Chain) CreateStateAccount(payer, key cryptoutil.PubKey, owner ProgramID, size int, state any) (Lamports, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := &Account{Key: key, Owner: owner, State: state, DataSize: size}
	if err := acc.validateSize(); err != nil {
		return 0, err
	}
	deposit := RentExemptBalance(size)
	p, ok := c.accounts[payer]
	if !ok || p.Lamports < deposit {
		return 0, fmt.Errorf("%w: need %d lamports for rent-exempt deposit", ErrInsufficientFunds, deposit)
	}
	p.Lamports -= deposit
	acc.Lamports = deposit
	c.accounts[key] = acc
	return deposit, nil
}

// ResizeStateAccount changes a state account's declared size, settling the
// rent-exempt deposit difference with the payer (deposit is recoverable
// when the account shrinks, as §V-D notes).
func (c *Chain) ResizeStateAccount(payer, key cryptoutil.PubKey, newSize int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc, ok := c.accounts[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAccount, key.Short())
	}
	if newSize > MaxAccountSize {
		return ErrAccountTooLarge
	}
	oldDep := RentExemptBalance(acc.Size())
	newDep := RentExemptBalance(newSize)
	p := c.getOrCreateAccount(payer)
	if newDep > oldDep {
		diff := newDep - oldDep
		if p.Lamports < diff {
			return fmt.Errorf("%w: need %d more lamports", ErrInsufficientFunds, diff)
		}
		p.Lamports -= diff
		acc.Lamports += diff
	} else {
		diff := oldDep - newDep
		acc.Lamports -= diff
		p.Lamports += diff
	}
	acc.DataSize = newSize
	return nil
}

// StateOf returns the native state object of a program account.
func (c *Chain) StateOf(key cryptoutil.PubKey) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc, ok := c.accounts[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAccount, key.Short())
	}
	return acc.State, nil
}

func (c *Chain) getOrCreateAccount(key cryptoutil.PubKey) *Account {
	if acc, ok := c.accounts[key]; ok {
		return acc
	}
	acc := &Account{Key: key}
	c.accounts[key] = acc
	return acc
}

// Submit queues a transaction for the next slot. Static validation happens
// immediately against the chain's profile; execution errors surface in the
// TxResult.
func (c *Chain) Submit(tx *Transaction) error {
	if err := tx.ValidateProfile(c.profile); err != nil {
		return err
	}
	c.mu.Lock()
	if _, dup := c.seenTxs[tx]; dup {
		c.mu.Unlock()
		return ErrDuplicateTransaction
	}
	if c.mempoolLimit > 0 && len(c.mempool) >= c.mempoolLimit {
		c.mempoolRejected.Inc()
		c.mu.Unlock()
		return ErrMempoolFull
	}
	c.rememberTxLocked(tx)
	c.seq++
	c.mempool = append(c.mempool, pendingTx{tx: tx, submitted: c.slot, seq: c.seq})
	c.txsSubmitted.Inc()
	c.mempoolDepth.Set(int64(len(c.mempool)))
	hook := c.onSubmit
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	return nil
}

// seenTxWindow bounds the replay-protection memory (like a recent-
// blockhash window); old entries age out ring-buffer style.
const seenTxWindow = 4096

// rememberTxLocked records an accepted transaction for replay detection.
func (c *Chain) rememberTxLocked(tx *Transaction) {
	if c.seenTxs == nil {
		c.seenTxs = make(map[*Transaction]struct{}, seenTxWindow)
		c.seenTxRing = make([]*Transaction, seenTxWindow)
	}
	if old := c.seenTxRing[c.seenTxPos]; old != nil {
		delete(c.seenTxs, old)
	}
	c.seenTxRing[c.seenTxPos] = tx
	c.seenTxPos = (c.seenTxPos + 1) % seenTxWindow
	c.seenTxs[tx] = struct{}{}
}

// PendingCount returns the mempool size.
func (c *Chain) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mempool)
}

// Slot returns the current slot number.
func (c *Chain) Slot() Slot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slot
}

// Now returns the chain clock's current time.
func (c *Chain) Now() time.Time { return c.clock.Now() }

// FeesCollected returns the cumulative fees charged.
func (c *Chain) FeesCollected() Lamports {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.feesCollected
}

// ProduceBlock executes the mempool (highest tip/priority first) within the
// slot's compute budget and appends a block. Unexecuted transactions stay
// queued for the next slot.
func (c *Chain) ProduceBlock() *Block {
	block, shed := c.produceBlockLocked()
	// Shed notifications run outside the lock: hooks typically roll back
	// application-side bookkeeping (escrow refunds) and may re-enter the
	// chain. Order follows arrival order within the mempool, so reruns of
	// the same seed shed — and refund — identically.
	for _, tx := range shed {
		if tx.OnShed != nil {
			tx.OnShed(tx)
		}
	}
	return block
}

func (c *Chain) produceBlockLocked() (*Block, []*Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Slots are wall-clock-derived so that on-demand block production
	// (the simulation runner skips empty slots) keeps slot numbers — and
	// with them epoch lengths measured in host slots — aligned with time.
	now := c.clock.Now()
	slot := Slot(now.Sub(c.genesisTime)/c.profile.SlotDuration) + 1
	if slot <= c.slot {
		slot = c.slot + 1
	}
	c.slot = slot
	block := &Block{Slot: c.slot, Time: now}

	// Deadline shedding: transactions that waited past their deadline are
	// dropped before ordering — under overload the stalest work is shed
	// instead of wasting block budget on requests nobody is waiting for.
	// OnShed hooks run after the lock is released (they may re-enter).
	var shed []*Transaction
	if c.anyDeadlineLocked() {
		kept := c.mempool[:0]
		for _, ptx := range c.mempool {
			if !ptx.tx.Deadline.IsZero() && now.After(ptx.tx.Deadline) {
				shed = append(shed, ptx.tx)
				continue
			}
			kept = append(kept, ptx)
		}
		for i := len(kept); i < len(c.mempool); i++ {
			c.mempool[i] = pendingTx{}
		}
		c.mempool = kept
		c.mempoolShed.Add(uint64(len(shed)))
	}

	// Order: bundle tips first (bundles jump the queue), then priority
	// fee, then arrival order.
	sort.SliceStable(c.mempool, func(i, j int) bool {
		a, b := c.mempool[i], c.mempool[j]
		if (a.tx.BundleTip > 0) != (b.tx.BundleTip > 0) {
			return a.tx.BundleTip > 0
		}
		if a.tx.BundleTip != b.tx.BundleTip {
			return a.tx.BundleTip > b.tx.BundleTip
		}
		if a.tx.PriorityFee != b.tx.PriorityFee {
			return a.tx.PriorityFee > b.tx.PriorityFee
		}
		return a.seq < b.seq
	})

	// Pre-verification stage: precompile signature batches for every
	// queued transaction are verified in parallel, sharded by fee-payer
	// key prefix, before the serial apply loop below consumes the cached
	// results in canonical order. Verification is stateless, so the
	// overlap cannot change execution outcomes — it only stops a block
	// full of single-signature Sign transactions from paying one
	// verification round-trip each, serially.
	c.preVerifyShardedLocked()

	var budget uint64
	var rest []pendingTx
	for i := range c.mempool {
		if budget >= c.profile.BlockComputeBudget {
			rest = append(rest, c.mempool[i:]...)
			break
		}
		ptx := &c.mempool[i]
		res := c.executeLocked(ptx, block)
		budget += res.Units
		block.Results = append(block.Results, res)
	}
	c.mempool = rest
	c.mempoolDepth.Set(int64(len(c.mempool)))

	c.blocks = append(c.blocks, block)
	if c.keepBlocks > 0 && len(c.blocks) > c.keepBlocks {
		drop := len(c.blocks) - c.keepBlocks
		c.blocks = append([]*Block(nil), c.blocks[drop:]...)
		c.prunedBlocks += drop
	}
	return block, shed
}

// anyDeadlineLocked reports whether any queued transaction carries a
// deadline, so deadline-free workloads skip the shedding pass entirely.
func (c *Chain) anyDeadlineLocked() bool {
	for i := range c.mempool {
		if !c.mempool[i].tx.Deadline.IsZero() {
			return true
		}
	}
	return false
}

// preVerifyShards caps the verification worker fan-out per block.
const preVerifyShards = 8

// preVerifyShardedLocked runs the precompile batches of every queued,
// not-yet-verified transaction across worker goroutines, sharded by the
// fee payer's key prefix. Results are cached on the pendingTx, so the
// serial apply loop — which keeps the canonical (tip, priority, arrival)
// order — never re-verifies, and a transaction deferred to a later slot
// is verified exactly once. Determinism: the per-transaction result does
// not depend on shard scheduling, only on the transaction itself.
func (c *Chain) preVerifyShardedLocked() {
	var work [preVerifyShards][]*pendingTx
	n := 0
	for i := range c.mempool {
		ptx := &c.mempool[i]
		if ptx.preVerified || len(ptx.tx.PrecompileSigs) == 0 {
			continue
		}
		shard := int(ptx.tx.FeePayer[0]) % preVerifyShards
		work[shard] = append(work[shard], ptx)
		n++
	}
	if n == 0 {
		return
	}
	if n == 1 {
		for _, shard := range work {
			for _, ptx := range shard {
				ptx.verified, ptx.verifyErr = runPrecompiles(ptx.tx)
				ptx.preVerified = true
			}
		}
		return
	}
	var wg sync.WaitGroup
	for s := range work {
		if len(work[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard []*pendingTx) {
			defer wg.Done()
			for _, ptx := range shard {
				ptx.verified, ptx.verifyErr = runPrecompiles(ptx.tx)
				ptx.preVerified = true
			}
		}(work[s])
	}
	wg.Wait()
}

// executeLocked runs one transaction atomically. State mutations performed
// by programs are applied directly; on error the native state objects are
// responsible for their own rollback (the Guest Contract stages mutations
// accordingly), while fee charging always happens.
func (c *Chain) executeLocked(ptx *pendingTx, block *Block) TxResult {
	tx := ptx.tx
	res := TxResult{
		Slot:     block.Slot,
		Index:    len(block.Results),
		Label:    tx.Label,
		NumSigs:  tx.NumSignatures(),
		Size:     tx.Size(),
		FeePayer: tx.FeePayer,
	}

	payer := c.getOrCreateAccount(tx.FeePayer)
	fee := tx.FeeProfile(c.profile)
	if payer.Lamports < fee {
		res.Err = fmt.Errorf("%w: fee %d > balance %d", ErrInsufficientFunds, fee, payer.Lamports)
		c.txsExecuted.Inc()
		c.txsFailed.Inc()
		return res
	}
	payer.Lamports -= fee
	c.feesCollected += fee
	res.Fee = fee

	sink := &eventSink{}
	meter := NewComputeMeter(c.profile.MaxComputeUnits)
	signers := map[cryptoutil.PubKey]bool{tx.FeePayer: true}
	for _, s := range tx.ExtraSigners {
		signers[s] = true
	}

	verified, err := ptx.verified, ptx.verifyErr
	if !ptx.preVerified {
		verified, err = runPrecompiles(tx)
	}
	if err != nil {
		res.Err = err
		c.txsExecuted.Inc()
		c.txsFailed.Inc()
		c.feesCharged.Add(uint64(fee))
		return res
	}

	for i := range tx.Instructions {
		ins := tx.Instructions[i]
		prog, ok := c.programs[ins.Program]
		if !ok {
			res.Err = fmt.Errorf("%w: %s", ErrUnknownProgram, ins.Program.Short())
			break
		}
		if err := meter.Consume(CUBaseInstruction); err != nil {
			res.Err = err
			break
		}
		ctx := &ExecContext{
			chain:    c,
			sink:     sink,
			program:  ins.Program,
			tx:       tx,
			Meter:    meter,
			Heap:     NewHeapMeter(MaxHeapBytes),
			Slot:     block.Slot,
			Time:     block.Time,
			signers:  signers,
			verified: verified,
		}
		if err := prog.Execute(ctx, ins); err != nil {
			res.Err = err
			break
		}
	}
	res.Units = meter.Used()
	c.txsExecuted.Inc()
	c.feesCharged.Add(uint64(fee))
	c.txCompute.Observe(float64(res.Units))
	if res.Err != nil {
		c.txsFailed.Inc()
	}

	if res.Err == nil {
		for i := range sink.events {
			sink.events[i].Slot = block.Slot
			sink.events[i].Time = block.Time
		}
		block.Events = append(block.Events, sink.events...)
	}
	return res
}

// BlocksSince returns blocks with slot > after, for event polling.
func (c *Chain) BlocksSince(after Slot) []*Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := sort.Search(len(c.blocks), func(i int) bool { return c.blocks[i].Slot > after })
	if idx >= len(c.blocks) {
		return nil
	}
	out := make([]*Block, len(c.blocks)-idx)
	copy(out, c.blocks[idx:])
	return out
}

// BlockAt returns the block at the given slot, if retained.
func (c *Chain) BlockAt(slot Slot) (*Block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := sort.Search(len(c.blocks), func(i int) bool { return c.blocks[i].Slot >= slot })
	if idx >= len(c.blocks) || c.blocks[idx].Slot != slot {
		return nil, errors.New("host: block not retained")
	}
	return c.blocks[idx], nil
}
