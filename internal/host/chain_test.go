package host

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// counterProgram is a minimal test program: instruction data [op] where
// op=1 increments a counter in the state account (accounts[0]); op=2
// fails; op=3 burns compute; op=4 emits an event.
type counterProgram struct {
	id      ProgramID
	account cryptoutil.PubKey
}

type counterState struct{ n int }

// pingEvent is the typed event the test program emits for op=4.
type pingEvent struct{ N int }

func (pingEvent) EventKind() string { return "ping" }

func (p *counterProgram) ID() ProgramID { return p.id }

func (p *counterProgram) Execute(ctx *ExecContext, ins Instruction) error {
	acc, err := ctx.Account(p.account)
	if err != nil {
		return err
	}
	st := acc.State.(*counterState)
	switch ins.Data[0] {
	case 1:
		st.n++
		return nil
	case 2:
		return errors.New("deliberate failure")
	case 3:
		return ctx.Meter.Consume(MaxComputeUnits + 1)
	case 4:
		ctx.Emit(pingEvent{N: st.n})
		return nil
	default:
		return fmt.Errorf("bad op %d", ins.Data[0])
	}
}

func newTestChain(t *testing.T) (*Chain, *ManualClock, *counterProgram, cryptoutil.PubKey) {
	t.Helper()
	clock := NewManualClock(time.Unix(1_700_000_000, 0))
	c := NewChain(clock)
	payer := cryptoutil.GenerateKey("payer").Public()
	c.Fund(payer, 100*LamportsPerSOL)

	prog := &counterProgram{
		id:      cryptoutil.GenerateKey("counter-program").Public(),
		account: cryptoutil.GenerateKey("counter-state").Public(),
	}
	c.RegisterProgram(prog)
	if _, err := c.CreateStateAccount(payer, prog.account, prog.id, 1024, &counterState{}); err != nil {
		t.Fatal(err)
	}
	return c, clock, prog, payer
}

func call(prog *counterProgram, payer cryptoutil.PubKey, op byte) *Transaction {
	return &Transaction{
		FeePayer: payer,
		Instructions: []Instruction{{
			Program:  prog.id,
			Accounts: []cryptoutil.PubKey{prog.account},
			Data:     []byte{op},
		}},
		Label: "test",
	}
}

func TestSubmitAndExecute(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	if err := c.Submit(call(prog, payer, 1)); err != nil {
		t.Fatal(err)
	}
	b := c.ProduceBlock()
	if len(b.Results) != 1 || b.Results[0].Err != nil {
		t.Fatalf("block results: %+v", b.Results)
	}
	st, err := c.StateOf(prog.account)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*counterState).n != 1 {
		t.Fatalf("counter = %d, want 1", st.(*counterState).n)
	}
}

func TestFeeCharged(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	before := c.Balance(payer)
	tx := call(prog, payer, 1)
	tx.PriorityFee = 1000
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	c.ProduceBlock()
	wantFee := BaseFeePerSignature + 1000
	if got := before - c.Balance(payer); got != wantFee {
		t.Fatalf("fee charged = %d, want %d", got, wantFee)
	}
}

func TestFailedTxStillPaysFee(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	before := c.Balance(payer)
	if err := c.Submit(call(prog, payer, 2)); err != nil {
		t.Fatal(err)
	}
	b := c.ProduceBlock()
	if b.Results[0].Err == nil {
		t.Fatal("expected execution error")
	}
	if c.Balance(payer) != before-BaseFeePerSignature {
		t.Fatal("failed tx did not pay base fee")
	}
}

func TestFailedTxDropsEvents(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	tx := &Transaction{
		FeePayer: payer,
		Instructions: []Instruction{
			{Program: prog.id, Data: []byte{4}},
			{Program: prog.id, Data: []byte{2}},
		},
	}
	if err := c.Submit(tx); err != nil {
		t.Fatal(err)
	}
	b := c.ProduceBlock()
	if len(b.Events) != 0 {
		t.Fatalf("failed tx leaked %d events", len(b.Events))
	}
}

func TestComputeBudget(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	if err := c.Submit(call(prog, payer, 3)); err != nil {
		t.Fatal(err)
	}
	b := c.ProduceBlock()
	if !errors.Is(b.Results[0].Err, ErrComputeBudgetExceeded) {
		t.Fatalf("err = %v, want ErrComputeBudgetExceeded", b.Results[0].Err)
	}
}

func TestTxSizeLimit(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	tx := call(prog, payer, 1)
	tx.Instructions[0].Data = make([]byte, MaxTransactionSize)
	if err := c.Submit(tx); !errors.Is(err, ErrTxTooLarge) {
		t.Fatalf("Submit oversized = %v, want ErrTxTooLarge", err)
	}
	// A payload at exactly the chunk limit must fit.
	tx2 := call(prog, payer, 1)
	tx2.Instructions[0].Data = make([]byte, MaxInstructionData(1, 1))
	tx2.Instructions[0].Data[0] = 1
	if err := c.Submit(tx2); err != nil {
		t.Fatalf("Submit max-chunk = %v", err)
	}
	if got := tx2.Size(); got > MaxTransactionSize {
		t.Fatalf("max-chunk tx size %d > limit", got)
	}
}

func TestSignatureLimit(t *testing.T) {
	_, _, prog, payer := newTestChain(t)
	tx := call(prog, payer, 1)
	for i := 0; i < MaxSignaturesPerTransaction; i++ {
		tx.ExtraSigners = append(tx.ExtraSigners, cryptoutil.GenerateKeyIndexed("sig", i).Public())
	}
	if err := tx.Validate(); !errors.Is(err, ErrTooManySignatures) {
		t.Fatalf("Validate = %v, want ErrTooManySignatures", err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	low := call(prog, payer, 4)
	low.Label = "low"
	high := call(prog, payer, 4)
	high.Label = "high"
	high.PriorityFee = 10_000
	bundle := call(prog, payer, 4)
	bundle.Label = "bundle"
	bundle.BundleTip = 1 // any bundle outranks any priority fee

	must(t, c.Submit(low))
	must(t, c.Submit(high))
	must(t, c.Submit(bundle))
	b := c.ProduceBlock()
	var got []string
	for _, r := range b.Results {
		got = append(got, r.Label)
	}
	want := []string{"bundle", "high", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestRentExemptDeposit(t *testing.T) {
	// §V-D: a 10 MiB account needs ≈ $14.6k at $200/SOL, i.e. ≈ 73 SOL.
	dep := RentExemptBalance(MaxAccountSize)
	sol := float64(dep) / float64(LamportsPerSOL)
	if sol < 70 || sol > 76 {
		t.Fatalf("10 MiB rent-exempt deposit = %.1f SOL, want ~73", sol)
	}
}

func TestCreateStateAccountRequiresDeposit(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	c := NewChain(clock)
	poor := cryptoutil.GenerateKey("poor").Public()
	c.Fund(poor, 1000)
	_, err := c.CreateStateAccount(poor, cryptoutil.GenerateKey("acct").Public(), ProgramID{}, MaxAccountSize, nil)
	if !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v, want ErrInsufficientFunds", err)
	}
}

func TestResizeRecoverDeposit(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	before := c.Balance(payer)
	// Grow to 1 MiB, then shrink back; the deposit must round-trip.
	must(t, c.ResizeStateAccount(payer, prog.account, 1024*1024))
	mid := c.Balance(payer)
	if mid >= before {
		t.Fatal("growing did not take a deposit")
	}
	must(t, c.ResizeStateAccount(payer, prog.account, 1024))
	if c.Balance(payer) != before {
		t.Fatalf("deposit not recovered: before=%d after=%d", before, c.Balance(payer))
	}
}

func TestEventsAndPolling(t *testing.T) {
	c, clock, prog, payer := newTestChain(t)
	must(t, c.Submit(call(prog, payer, 4)))
	c.ProduceBlock()
	clock.Advance(SlotDuration)
	must(t, c.Submit(call(prog, payer, 4)))
	c.ProduceBlock()

	blocks := c.BlocksSince(0)
	if len(blocks) != 2 {
		t.Fatalf("BlocksSince(0) = %d blocks, want 2", len(blocks))
	}
	blocks = c.BlocksSince(1)
	if len(blocks) != 1 || blocks[0].Slot != 2 {
		t.Fatalf("BlocksSince(1) wrong: %+v", blocks)
	}
	if len(blocks[0].EventsOfKind("ping")) != 1 {
		t.Fatal("missing ping event")
	}
}

func TestBlockRetention(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	c.SetBlockRetention(5)
	for i := 0; i < 12; i++ {
		must(t, c.Submit(call(prog, payer, 1)))
		c.ProduceBlock()
	}
	blocks := c.BlocksSince(0)
	if len(blocks) != 5 {
		t.Fatalf("retained %d blocks, want 5", len(blocks))
	}
	if blocks[0].Slot != 8 {
		t.Fatalf("first retained slot = %d, want 8", blocks[0].Slot)
	}
	if _, err := c.BlockAt(3); err == nil {
		t.Fatal("pruned block still retrievable")
	}
	if b, err := c.BlockAt(10); err != nil || b.Slot != 10 {
		t.Fatalf("BlockAt(10) = %v, %v", b, err)
	}
}

func TestUnknownProgram(t *testing.T) {
	c, _, _, payer := newTestChain(t)
	tx := &Transaction{
		FeePayer:     payer,
		Instructions: []Instruction{{Program: cryptoutil.GenerateKey("nope").Public(), Data: []byte{1}}},
	}
	must(t, c.Submit(tx))
	b := c.ProduceBlock()
	if !errors.Is(b.Results[0].Err, ErrUnknownProgram) {
		t.Fatalf("err = %v, want ErrUnknownProgram", b.Results[0].Err)
	}
}

func TestTransferRequiresSigner(t *testing.T) {
	c, _, prog, payer := newTestChain(t)
	victim := cryptoutil.GenerateKey("victim").Public()
	c.Fund(victim, 1000)

	// A program trying to move a non-signer's funds must fail.
	p := &transferProgram{id: cryptoutil.GenerateKey("xfer").Public(), from: victim, to: payer}
	c.RegisterProgram(p)
	must(t, c.Submit(&Transaction{
		FeePayer:     payer,
		Instructions: []Instruction{{Program: p.id}},
	}))
	b := c.ProduceBlock()
	if !errors.Is(b.Results[0].Err, ErrMissingSigner) {
		t.Fatalf("err = %v, want ErrMissingSigner", b.Results[0].Err)
	}
	_ = prog
}

type transferProgram struct {
	id       ProgramID
	from, to cryptoutil.PubKey
}

func (p *transferProgram) ID() ProgramID { return p.id }
func (p *transferProgram) Execute(ctx *ExecContext, _ Instruction) error {
	return ctx.Transfer(p.from, p.to, 500)
}

func TestVerifySignatureMetered(t *testing.T) {
	c, _, _, payer := newTestChain(t)
	key := cryptoutil.GenerateKey("signer")
	msg := []byte("hello")
	sig := key.Sign(msg)

	p := &sigProgram{id: cryptoutil.GenerateKey("sigprog").Public(), pub: key.Public(), msg: msg, sig: sig}
	c.RegisterProgram(p)
	must(t, c.Submit(&Transaction{FeePayer: payer, Instructions: []Instruction{{Program: p.id}}}))
	b := c.ProduceBlock()
	if b.Results[0].Err != nil {
		t.Fatal(b.Results[0].Err)
	}
	if b.Results[0].Units < CUPerEd25519Verify {
		t.Fatalf("units = %d, want >= %d (sig verify charged)", b.Results[0].Units, CUPerEd25519Verify)
	}
}

type sigProgram struct {
	id  ProgramID
	pub cryptoutil.PubKey
	msg []byte
	sig cryptoutil.Signature
}

func (p *sigProgram) ID() ProgramID { return p.id }
func (p *sigProgram) Execute(ctx *ExecContext, _ Instruction) error {
	ok, err := ctx.VerifySignature(p.pub, p.msg, p.sig)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("bad signature")
	}
	return nil
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeters(t *testing.T) {
	m := NewComputeMeter(1000)
	if err := m.Consume(400); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 400 || m.Remaining() != 600 {
		t.Fatalf("used/remaining = %d/%d", m.Used(), m.Remaining())
	}
	if err := m.Consume(700); !errors.Is(err, ErrComputeBudgetExceeded) {
		t.Fatalf("overrun = %v", err)
	}
	if m.Remaining() != 0 {
		t.Fatalf("remaining after overrun = %d", m.Remaining())
	}

	// Hash pricing: 64-byte blocks.
	m2 := NewComputeMeter(10 * CUPerSHA256Block)
	if err := m2.ConsumeHash(63); err != nil { // 1 block + padding
		t.Fatal(err)
	}
	if m2.Used() != CUPerSHA256Block {
		t.Fatalf("hash cost = %d", m2.Used())
	}

	h := NewHeapMeter(100)
	if err := h.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(60); !errors.Is(err, ErrHeapExhausted) {
		t.Fatalf("heap overrun = %v", err)
	}
	if h.Used() != 120 {
		t.Fatalf("heap used = %d", h.Used())
	}
}

func TestAccountRent(t *testing.T) {
	a := &Account{Data: make([]byte, 1000)}
	if a.Size() != 1000 {
		t.Fatalf("size = %d", a.Size())
	}
	a.DataSize = 5000 // declared size wins
	if a.Size() != 5000 {
		t.Fatalf("declared size = %d", a.Size())
	}
	a.Lamports = RentExemptBalance(5000) - 1
	if a.RentExempt() {
		t.Fatal("below minimum counted as exempt")
	}
	a.Lamports++
	if !a.RentExempt() {
		t.Fatal("exact minimum not exempt")
	}
	a.DataSize = MaxAccountSize + 1
	if err := a.validateSize(); !errors.Is(err, ErrAccountTooLarge) {
		t.Fatalf("oversized account = %v", err)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{SolanaProfile(), NEARLikeProfile(), TRONLikeProfile()} {
		if p.Name == "" || p.MaxTransactionSize <= 0 || p.SlotDuration <= 0 {
			t.Fatalf("profile %+v invalid", p)
		}
		if p.MaxInstructionData(1, 1) <= 0 {
			t.Fatalf("profile %s has no instruction room", p.Name)
		}
		if p.MaxInstructionData(1, 1) >= p.MaxTransactionSize {
			t.Fatalf("profile %s instruction room exceeds tx size", p.Name)
		}
	}
	// The Solana profile mirrors the package constants.
	s := SolanaProfile()
	if s.MaxTransactionSize != MaxTransactionSize || s.MaxComputeUnits != MaxComputeUnits {
		t.Fatal("solana profile drifted from constants")
	}
	if s.MaxInstructionData(1, 1) != MaxInstructionData(1, 1) {
		t.Fatal("profile instruction-data math diverges from the package helper")
	}
}

func TestChainProfileEnforced(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	c := NewChainWithProfile(clock, NEARLikeProfile())
	payer := cryptoutil.GenerateKey("profile-payer").Public()
	c.Fund(payer, LamportsPerSOL)
	prog := &counterProgram{
		id:      cryptoutil.GenerateKey("profile-prog").Public(),
		account: cryptoutil.GenerateKey("profile-state").Public(),
	}
	c.RegisterProgram(prog)
	if _, err := c.CreateStateAccount(payer, prog.account, prog.id, 64, &counterState{}); err != nil {
		t.Fatal(err)
	}
	// A transaction far beyond Solana's limit fits the NEAR-like profile.
	tx := call(prog, payer, 1)
	tx.Instructions[0].Data = make([]byte, 100_000)
	tx.Instructions[0].Data[0] = 1
	if err := c.Submit(tx); err != nil {
		t.Fatalf("NEAR-like chain rejected a 100KB tx: %v", err)
	}
	b := c.ProduceBlock()
	if b.Results[0].Err != nil {
		t.Fatal(b.Results[0].Err)
	}
}
