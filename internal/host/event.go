package host

import "time"

// Event is a log record emitted by a program during execution; off-chain
// actors (validators, relayers, fishermen) poll events by slot, mirroring
// how the paper's daemons watch the Guest Contract.
type Event struct {
	Slot    Slot
	Time    time.Time
	Program ProgramID
	Kind    string
	Data    any
}

// Block is one produced host block: its slot, timestamp, executed
// transaction results, and emitted events.
type Block struct {
	Slot    Slot
	Time    time.Time
	Results []TxResult
	Events  []Event
}

// EventsOfKind filters the block's events by kind.
func (b *Block) EventsOfKind(kind string) []Event {
	var out []Event
	for _, e := range b.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// eventSink collects events during one transaction so they can be dropped
// if the transaction fails (atomicity).
type eventSink struct {
	events []Event
}

func (s *eventSink) emit(program ProgramID, kind string, data any) {
	s.events = append(s.events, Event{Program: program, Kind: kind, Data: data})
}
