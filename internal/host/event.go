package host

import (
	"time"

	"repro/internal/telemetry"
)

// Event is a log record emitted by a program during execution; off-chain
// actors (validators, relayers, fishermen) poll events by slot, mirroring
// how the paper's daemons watch the Guest Contract. The payload is a typed
// telemetry.Event: consumers type-switch on the concrete struct rather than
// string-matching a kind and down-casting an untyped value.
type Event struct {
	Slot    Slot
	Time    time.Time
	Program ProgramID
	Payload telemetry.Event
}

// Kind returns the payload's stable event name.
func (e Event) Kind() string {
	if e.Payload == nil {
		return ""
	}
	return e.Payload.EventKind()
}

// Block is one produced host block: its slot, timestamp, executed
// transaction results, and emitted events.
type Block struct {
	Slot    Slot
	Time    time.Time
	Results []TxResult
	Events  []Event
}

// EventsOfKind filters the block's events by kind.
func (b *Block) EventsOfKind(kind string) []Event {
	var out []Event
	for _, e := range b.Events {
		if e.Kind() == kind {
			out = append(out, e)
		}
	}
	return out
}

// eventSink collects events during one transaction so they can be dropped
// if the transaction fails (atomicity).
type eventSink struct {
	events []Event
}

func (s *eventSink) emit(program ProgramID, ev telemetry.Event) {
	s.events = append(s.events, Event{Program: program, Payload: ev})
}
