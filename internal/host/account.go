package host

import (
	"fmt"

	"repro/internal/cryptoutil"
)

// Account is an entry in the host chain's account database. Following the
// Solana model, an account stores lamports and a fixed-size data region and
// is owned by a program; only the owner may mutate the data.
//
// Program-owned state accounts additionally carry State, an opaque native
// object, with DataSize declaring the on-chain footprint used for rent.
// This is a deliberate simulation shortcut: the paper's contract serializes
// its state into the 10 MiB account, while we keep the Go object live and
// charge rent on the declared size — the cost model (what the evaluation
// measures) is identical, the serialization code is not what the paper
// evaluates.
type Account struct {
	Key      cryptoutil.PubKey
	Lamports Lamports
	Owner    ProgramID
	Data     []byte

	// State is the native state object for program accounts.
	State any
	// DataSize is the declared on-chain size in bytes (for rent); when 0
	// the length of Data is used.
	DataSize int
}

// Size returns the rent-relevant size of the account.
func (a *Account) Size() int {
	if a.DataSize > 0 {
		return a.DataSize
	}
	return len(a.Data)
}

// RentExempt reports whether the account holds at least the rent-exempt
// minimum for its size.
func (a *Account) RentExempt() bool {
	return a.Lamports >= RentExemptBalance(a.Size())
}

// validateSize checks the account size limit.
func (a *Account) validateSize() error {
	if a.Size() > MaxAccountSize {
		return fmt.Errorf("host: account size %d exceeds maximum %d: %w", a.Size(), MaxAccountSize, ErrAccountTooLarge)
	}
	return nil
}
