package routing

import (
	"errors"
	"reflect"
	"testing"
)

// diamondLinks is guest-a, guest-b, a-c, b-c: two equal-length arms
// guest->c.
func diamondLinks() []Link {
	return []Link{
		{A: "guest", B: "a", PortA: "transfer", PortB: "transfer", ChannelA: "channel-0", ChannelB: "channel-0"},
		{A: "guest", B: "b", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-0"},
		{A: "a", B: "c", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-0"},
		{A: "b", B: "c", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-1"},
	}
}

func TestRouteDisconnectedGraphTypedError(t *testing.T) {
	// Two components: {guest, a} and {x, y}. Building the table must not
	// panic, and cross-component routes must report ErrNoRoute.
	links := []Link{
		{A: "guest", B: "a", PortA: "transfer", PortB: "transfer", ChannelA: "channel-0", ChannelB: "channel-0"},
		{A: "x", B: "y", PortA: "transfer", PortB: "transfer", ChannelA: "channel-0", ChannelB: "channel-0"},
	}
	tab := NewTable(links)
	if _, err := tab.Route("guest", "y"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("table cross-component err = %v, want ErrNoRoute", err)
	}
	if _, err := tab.Route("guest", "guest"); !errors.Is(err, ErrSameChain) {
		t.Fatalf("table self-route err = %v, want ErrSameChain", err)
	}
	if _, err := tab.Route("guest", "nowhere"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("table unknown-chain err = %v, want ErrNoRoute", err)
	}
	v := NewView(links, CostModel{}, 7)
	if _, err := v.Route("guest", "y"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("view cross-component err = %v, want ErrNoRoute", err)
	}
	if _, err := v.RouteFlow("a", "x", "alice", 3); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("view flow cross-component err = %v, want ErrNoRoute", err)
	}
	if _, err := v.Route("x", "x"); !errors.Is(err, ErrSameChain) {
		t.Fatalf("view self-route err = %v, want ErrSameChain", err)
	}
	// Within a component both still route.
	if _, err := v.Route("guest", "a"); err != nil {
		t.Fatalf("in-component route: %v", err)
	}
}

func TestEqualCostTieBreakPermutationInvariance(t *testing.T) {
	links := diamondLinks()
	// Permute order and flip every link's orientation: the table, the
	// view's path sets, and every ECMP pick must be identical.
	flipped := make([]Link, 0, len(links))
	for i := len(links) - 1; i >= 0; i-- {
		l := links[i]
		flipped = append(flipped, Link{
			A: l.B, B: l.A,
			PortA: l.PortB, PortB: l.PortA,
			ChannelA: l.ChannelB, ChannelB: l.ChannelA,
		})
	}
	t1, t2 := NewTable(links), NewTable(flipped)
	v1, v2 := NewView(links, CostModel{}, 42), NewView(flipped, CostModel{}, 42)
	for _, src := range t1.Chains() {
		for _, dst := range t1.Chains() {
			if src == dst {
				continue
			}
			r1, _ := t1.Route(src, dst)
			r2, _ := t2.Route(src, dst)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("table route %s->%s differs under permutation", src, dst)
			}
			if !reflect.DeepEqual(v1.Paths(src, dst), v2.Paths(src, dst)) {
				t.Fatalf("view paths %s->%s differ under permutation:\n%+v\n%+v",
					src, dst, v1.Paths(src, dst), v2.Paths(src, dst))
			}
			b1, _ := v1.Route(src, dst)
			b2, _ := v2.Route(src, dst)
			if !reflect.DeepEqual(b1, b2) {
				t.Fatalf("view route %s->%s differs under permutation", src, dst)
			}
			for seq := uint64(0); seq < 16; seq++ {
				f1, _ := v1.RouteFlow(src, dst, "alice", seq)
				f2, _ := v2.RouteFlow(src, dst, "alice", seq)
				if !reflect.DeepEqual(f1, f2) {
					t.Fatalf("ECMP pick %s->%s seq %d differs under permutation", src, dst, seq)
				}
			}
		}
	}
}

func TestViewECMPSplitsEqualCostArms(t *testing.T) {
	v := NewView(diamondLinks(), CostModel{}, 1)
	paths := v.Paths("guest", "c")
	if len(paths) != 2 {
		t.Fatalf("equal-cost set size %d, want 2 (both diamond arms)", len(paths))
	}
	// Flows must spread across both arms, and the split must be a pure
	// function of (seed, sender, sequence).
	arm := map[string]int{}
	for seq := uint64(1); seq <= 64; seq++ {
		hops, err := v.RouteFlow("guest", "c", "alice", seq)
		if err != nil {
			t.Fatal(err)
		}
		arm[hops[0].To]++
		again, _ := v.RouteFlow("guest", "c", "alice", seq)
		if !reflect.DeepEqual(hops, again) {
			t.Fatalf("seq %d not sticky", seq)
		}
	}
	if arm["a"] == 0 || arm["b"] == 0 {
		t.Fatalf("ECMP did not split: %v", arm)
	}
	// Exact ties weight evenly: neither arm takes more than ~3/4.
	if arm["a"] > 48 || arm["b"] > 48 {
		t.Fatalf("ECMP split badly skewed: %v", arm)
	}
	// A different sender hashes independently but still deterministically.
	h1, _ := v.RouteFlow("guest", "c", "bob", 1)
	h2, _ := v.RouteFlow("guest", "c", "bob", 1)
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("same-flow pick not deterministic")
	}
}

func TestViewHysteresisGatesRecompute(t *testing.T) {
	v := NewView(diamondLinks(), CostModel{Hysteresis: 0.5}, 1)
	// Small drift on the a-c arm: below the 50% hysteresis, no rebuild.
	v.Observe(LinkID("a", "c"), LinkHealth{Latency: 0.3})
	if v.Refresh() {
		t.Fatal("refresh rebuilt below the hysteresis threshold")
	}
	if v.Recomputes() != 0 {
		t.Fatalf("recomputes = %d, want 0", v.Recomputes())
	}
	// Big degradation: cost 1 -> 4, rebuild fires and guest->c abandons
	// the a arm entirely (4+1 is far outside the ECMP spread of 2).
	v.Observe(LinkID("a", "c"), LinkHealth{Latency: 3})
	if !v.Refresh() {
		t.Fatal("refresh did not rebuild after degradation")
	}
	if v.Recomputes() != 1 {
		t.Fatalf("recomputes = %d, want 1", v.Recomputes())
	}
	paths := v.Paths("guest", "c")
	if len(paths) != 1 || paths[0][0].To != "b" {
		t.Fatalf("post-degradation paths %+v, want only via b", paths)
	}
	for seq := uint64(0); seq < 8; seq++ {
		hops, err := v.RouteFlow("guest", "c", "alice", seq)
		if err != nil {
			t.Fatal(err)
		}
		if hops[0].To != "b" {
			t.Fatalf("flow seq %d still routed via degraded arm", seq)
		}
	}
	// Health restored: costs fall back, rebuild fires again and both arms
	// return to the equal-cost set.
	v.Observe(LinkID("a", "c"), LinkHealth{Latency: 0})
	if !v.Refresh() {
		t.Fatal("refresh did not rebuild after recovery")
	}
	if got := len(v.Paths("guest", "c")); got != 2 {
		t.Fatalf("post-recovery path set size %d, want 2", got)
	}
}

func TestViewScoresDeadLettersAndBacklog(t *testing.T) {
	v := NewView(diamondLinks(), CostModel{DropDecay: 1}, 1)
	id := LinkID("b", "c")
	base := v.Cost(id)
	// Dead letters are cumulative; the view folds deltas into an EWMA.
	v.Observe(id, LinkHealth{DeadLetters: 4})
	v.Refresh()
	withDrops := v.Cost(id)
	if withDrops <= base {
		t.Fatalf("dead letters did not raise cost: %v <= %v", withDrops, base)
	}
	// A flat counter means no new drops: with full decay the penalty
	// clears and a large backlog becomes the dominant term.
	v.Observe(id, LinkHealth{DeadLetters: 4, Backlog: 500})
	v.Refresh()
	withBacklog := v.Cost(id)
	if withBacklog <= base {
		t.Fatalf("backlog did not raise cost: %v <= %v", withBacklog, base)
	}
	v.Observe(id, LinkHealth{DeadLetters: 4})
	v.Refresh()
	if got := v.Cost(id); got != base {
		t.Fatalf("cost did not return to base after recovery: %v != %v", got, base)
	}
}
