// Package routing computes packet routes over a mesh's link graph: which
// (port, channel) sequence a multi-hop transfer traverses, the nested
// forward memo the PR-7 forwarding middleware consumes at each
// intermediate chain, and the ICS-20 denom trace the transfer composes
// along the way. Routes are static shortest paths; the table is built
// once from the bootstrapped topology and is deterministic in the link
// set regardless of declaration order or orientation.
package routing

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ibc"
	"repro/internal/middleware"
	"repro/internal/transfer"
)

// ErrNoRoute reports an unreachable destination: the mesh graph has no
// path between the requested chains (disconnected components are legal
// topologies — callers must handle this, not panic).
var ErrNoRoute = errors.New("routing: no route")

// ErrSameChain reports a route request whose source and destination are
// the same chain.
var ErrSameChain = errors.New("routing: same chain")

// Link is one bidirectional mesh link between chains A and B, named by
// each side's transfer (port, channel) as bootstrap opened them.
type Link struct {
	A, B               string
	PortA, PortB       ibc.PortID
	ChannelA, ChannelB ibc.ChannelID
}

// Hop is one step of a route: the sending chain's (Port, Channel) the
// packet leaves through, and the receiving chain's (DestPort,
// DestChannel) it arrives on — the pair ICS-20 uses to extend the denom
// trace.
type Hop struct {
	From, To    string
	Port        ibc.PortID
	Channel     ibc.ChannelID
	DestPort    ibc.PortID
	DestChannel ibc.ChannelID
}

// edge is a directed view of a Link.
type edge struct {
	to  string
	hop Hop
}

// Table holds precomputed shortest-path routes between every chain pair.
type Table struct {
	chains []string
	routes map[string][]Hop // "src dst" -> hop sequence
}

// routeKey indexes routes; chain names never contain a space.
func routeKey(src, dst string) string { return src + " " + dst }

// NewTable builds the all-pairs route table. Paths are breadth-first
// shortest; ties break on the lexicographically smallest (neighbor,
// channel), so the result is a pure function of the link set — two meshes
// declaring the same links in different order or orientation route
// identically.
func NewTable(links []Link) *Table {
	adj := make(map[string][]edge)
	addEdge := func(from, to string, h Hop) {
		adj[from] = append(adj[from], edge{to: to, hop: h})
	}
	for _, l := range links {
		addEdge(l.A, l.B, Hop{From: l.A, To: l.B, Port: l.PortA, Channel: l.ChannelA, DestPort: l.PortB, DestChannel: l.ChannelB})
		addEdge(l.B, l.A, Hop{From: l.B, To: l.A, Port: l.PortB, Channel: l.ChannelB, DestPort: l.PortA, DestChannel: l.ChannelA})
	}
	t := &Table{routes: make(map[string][]Hop)}
	for name, edges := range adj {
		t.chains = append(t.chains, name)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].to != edges[j].to {
				return edges[i].to < edges[j].to
			}
			return edges[i].hop.Channel < edges[j].hop.Channel
		})
		adj[name] = edges
	}
	sort.Strings(t.chains)

	for _, src := range t.chains {
		// BFS with sorted expansion: the first path found to each node is
		// both shortest and canonical.
		prev := map[string]Hop{}
		visited := map[string]bool{src: true}
		queue := []string{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				if visited[e.to] {
					continue
				}
				visited[e.to] = true
				prev[e.to] = e.hop
				queue = append(queue, e.to)
			}
		}
		for _, dst := range t.chains {
			if dst == src || !visited[dst] {
				continue
			}
			var hops []Hop
			for cur := dst; cur != src; {
				h := prev[cur]
				hops = append([]Hop{h}, hops...)
				cur = h.From
			}
			t.routes[routeKey(src, dst)] = hops
		}
	}
	return t
}

// Chains lists every chain in the graph, sorted.
func (t *Table) Chains() []string { return t.chains }

// Route returns the hop sequence from src to dst. Unreachable
// destinations return an error wrapping ErrNoRoute; src == dst wraps
// ErrSameChain.
func (t *Table) Route(src, dst string) ([]Hop, error) {
	if src == dst {
		return nil, fmt.Errorf("%w: %s->%s", ErrSameChain, src, dst)
	}
	hops, ok := t.routes[routeKey(src, dst)]
	if !ok {
		return nil, fmt.Errorf("%w: %s->%s", ErrNoRoute, src, dst)
	}
	return hops, nil
}

// ForwardPlan is what a routed send needs beyond the first hop's (port,
// channel): the first-hop receiver and the memo carrying the remaining
// hops as nested forward instructions.
type ForwardPlan struct {
	Receiver string
	Memo     string
}

// Plan composes the forward memo for route: single-hop routes address the
// final receiver directly with the base memo; multi-hop routes address
// each intermediate chain's forward module account and nest one forward
// instruction per remaining hop, innermost last — exactly the shape the
// forwarding middleware unwraps one layer per chain.
func Plan(route []Hop, finalReceiver, moduleAccount, baseMemo string) ForwardPlan {
	if len(route) <= 1 {
		return ForwardPlan{Receiver: finalReceiver, Memo: baseMemo}
	}
	memo := baseMemo
	receiver := finalReceiver
	// Build inside-out: the instruction for the last forwarding chain
	// (route[len-1].From) is innermost.
	for i := len(route) - 1; i >= 1; i-- {
		h := route[i]
		memo = middleware.ForwardMemo(middleware.ForwardInfo{
			Port:     string(h.Port),
			Channel:  string(h.Channel),
			Receiver: receiver,
			Memo:     memo,
		})
		receiver = moduleAccount
	}
	return ForwardPlan{Receiver: receiver, Memo: memo}
}

// TraceDenom returns the denom held on each chain along the route:
// entry 0 is the denom on the source, entry i the denom after hop i.
// Each hop applies the ICS-20 rule the transfer app implements: a denom
// prefixed by the sending end's (port, channel) is going home and loses
// that prefix; anything else gains the receiving end's prefix.
func TraceDenom(route []Hop, denom string) []string {
	out := make([]string, 0, len(route)+1)
	out = append(out, denom)
	cur := denom
	for _, h := range route {
		srcPrefix := transfer.VoucherPrefix(h.Port, h.Channel)
		if strings.HasPrefix(cur, srcPrefix) {
			cur = strings.TrimPrefix(cur, srcPrefix)
		} else {
			cur = transfer.VoucherPrefix(h.DestPort, h.DestChannel) + cur
		}
		out = append(out, cur)
	}
	return out
}
