package routing

import (
	"reflect"
	"testing"

	"repro/internal/middleware"
)

// lineLinks is G-A-B-C with per-side ports/channels as bootstrap names
// them.
func lineLinks() []Link {
	return []Link{
		{A: "guest", B: "a", PortA: "transfer", PortB: "transfer", ChannelA: "channel-0", ChannelB: "channel-0"},
		{A: "a", B: "b", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-0"},
		{A: "b", B: "c", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-0"},
	}
}

func TestRouteLine(t *testing.T) {
	tab := NewTable(lineLinks())
	hops, err := tab.Route("guest", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(hops))
	}
	wantFrom := []string{"guest", "a", "b"}
	for i, h := range hops {
		if h.From != wantFrom[i] {
			t.Fatalf("hop %d from %q, want %q", i, h.From, wantFrom[i])
		}
	}
	if hops[1].Channel != "channel-1" || hops[1].DestChannel != "channel-0" {
		t.Fatalf("hop 1 channels %s/%s", hops[1].Channel, hops[1].DestChannel)
	}
	// Reverse route mirrors the hops.
	back, err := tab.Route("c", "guest")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0].From != "c" || back[2].To != "guest" {
		t.Fatalf("reverse route %+v", back)
	}
}

func TestRouteDeterministicUnderPermutation(t *testing.T) {
	links := lineLinks()
	// Permute order and flip every link's orientation.
	flipped := make([]Link, 0, len(links))
	for i := len(links) - 1; i >= 0; i-- {
		l := links[i]
		flipped = append(flipped, Link{
			A: l.B, B: l.A,
			PortA: l.PortB, PortB: l.PortA,
			ChannelA: l.ChannelB, ChannelB: l.ChannelA,
		})
	}
	t1, t2 := NewTable(links), NewTable(flipped)
	for _, src := range t1.Chains() {
		for _, dst := range t1.Chains() {
			if src == dst {
				continue
			}
			r1, err1 := t1.Route(src, dst)
			r2, err2 := t2.Route(src, dst)
			if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(r1, r2) {
				t.Fatalf("route %s->%s differs under permutation:\n%+v\n%+v", src, dst, r1, r2)
			}
		}
	}
}

func TestRouteDiamondPrefersCanonicalTie(t *testing.T) {
	// guest-a, guest-b, a-c, b-c: two equal-length guest->c paths; the
	// canonical tie-break picks via "a".
	links := []Link{
		{A: "guest", B: "a", PortA: "transfer", PortB: "transfer", ChannelA: "channel-0", ChannelB: "channel-0"},
		{A: "guest", B: "b", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-0"},
		{A: "a", B: "c", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-0"},
		{A: "b", B: "c", PortA: "transfer", PortB: "transfer", ChannelA: "channel-1", ChannelB: "channel-1"},
	}
	tab := NewTable(links)
	hops, err := tab.Route("guest", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 || hops[0].To != "a" {
		t.Fatalf("diamond route %+v, want guest->a->c", hops)
	}
	if _, err := tab.Route("guest", "missing"); err == nil {
		t.Fatal("expected error for unknown destination")
	}
	if _, err := tab.Route("guest", "guest"); err == nil {
		t.Fatal("expected error for self route")
	}
}

func TestPlanNestsForwardMemos(t *testing.T) {
	tab := NewTable(lineLinks())
	hops, _ := tab.Route("guest", "c")
	plan := Plan(hops, "carol", "forward-module", "hello")
	if plan.Receiver != "forward-module" {
		t.Fatalf("first-hop receiver %q, want module account", plan.Receiver)
	}
	// Outer layer: chain a forwards over its a-b end (channel-1) to the
	// module account on b.
	outer := middleware.ParseForwardMemo(plan.Memo)
	if outer == nil {
		t.Fatalf("outer memo not a forward instruction: %q", plan.Memo)
	}
	if outer.Port != "transfer" || outer.Channel != "channel-1" || outer.Receiver != "forward-module" {
		t.Fatalf("outer forward %+v", outer)
	}
	inner := middleware.ParseForwardMemo(outer.Memo)
	if inner == nil {
		t.Fatalf("inner memo not a forward instruction: %q", outer.Memo)
	}
	if inner.Channel != "channel-1" || inner.Receiver != "carol" || inner.Memo != "hello" {
		t.Fatalf("inner forward %+v", inner)
	}
	// Single-hop: no nesting.
	one, _ := tab.Route("guest", "a")
	p1 := Plan(one, "carol", "forward-module", "m")
	if p1.Receiver != "carol" || p1.Memo != "m" {
		t.Fatalf("single-hop plan %+v", p1)
	}
}

func TestTraceDenomComposesAndUnwinds(t *testing.T) {
	tab := NewTable(lineLinks())
	out, _ := tab.Route("guest", "c")
	trace := TraceDenom(out, "TOK")
	want := []string{
		"TOK",
		"transfer/channel-0/TOK",
		"transfer/channel-0/transfer/channel-0/TOK",
		"transfer/channel-0/transfer/channel-0/transfer/channel-0/TOK",
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	// Sending the terminal voucher back unwinds to the native denom.
	back, _ := tab.Route("c", "guest")
	backTrace := TraceDenom(back, trace[len(trace)-1])
	if backTrace[len(backTrace)-1] != "TOK" {
		t.Fatalf("round trip ends at %q, want TOK", backTrace[len(backTrace)-1])
	}
}
