package routing

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// LinkID returns the canonical mesh identifier for the link between a
// and b — the lexicographically smaller chain first, matching the link
// IDs core's mesh bootstrap assigns.
func LinkID(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "-" + b
}

// LinkHealth is one telemetry sample for a link, fed from the relayers
// serving it: the EWMA packet-delivery latency, the cumulative
// dead-letter count of the link's reliable network calls, and the depth
// of the relayer's queued work (inbound packets, pending acks, ack
// backlog, paced jobs).
type LinkHealth struct {
	// Latency is the EWMA delivery latency in seconds.
	Latency float64
	// DeadLetters is the cumulative dead-lettered call count; the view
	// folds per-refresh deltas into a drop-rate EWMA.
	DeadLetters uint64
	// Backlog is the current queued-work depth.
	Backlog int
}

// CostModel parameterises how link health turns into a routing cost.
// The zero value is replaced by DefaultCostModel.
type CostModel struct {
	// BaseCost is the per-hop floor: a perfectly healthy link still
	// costs this much, so shorter paths win when health is equal.
	BaseCost float64
	// LatencyWeight is the cost added per second of EWMA latency.
	LatencyWeight float64
	// DropWeight is the cost added per unit of the dead-letter EWMA.
	DropWeight float64
	// BacklogWeight is the cost added per backlogged work item.
	BacklogWeight float64
	// Hysteresis is the minimum fractional change of any link's cost
	// (relative to the cost backing the current table) that triggers a
	// recompute; smaller drifts are absorbed so routes don't flap.
	Hysteresis float64
	// ECMPSpread widens equal-cost matching: a path whose cost is
	// within (1+ECMPSpread)x the best is part of the multi-path set.
	ECMPSpread float64
	// MaxPaths caps the retained multi-path set per chain pair.
	MaxPaths int
	// DropDecay is the EWMA weight applied to each refresh's new
	// dead-letter delta (0 < DropDecay <= 1).
	DropDecay float64
}

// DefaultCostModel returns the tuning used by core when a mesh enables
// adaptive routing without overriding the model.
func DefaultCostModel() CostModel {
	return CostModel{
		BaseCost:      1,
		LatencyWeight: 1,    // +1 cost per second of EWMA delivery latency
		DropWeight:    0.5,  // +0.5 per dead-lettered call in the EWMA window
		BacklogWeight: 0.02, // +1 per 50 backlogged items
		Hysteresis:    0.25,
		ECMPSpread:    0.05,
		MaxPaths:      4,
		DropDecay:     0.5,
	}
}

// withDefaults fills zero fields from DefaultCostModel.
func (m CostModel) withDefaults() CostModel {
	d := DefaultCostModel()
	if m.BaseCost <= 0 {
		m.BaseCost = d.BaseCost
	}
	if m.LatencyWeight <= 0 {
		m.LatencyWeight = d.LatencyWeight
	}
	if m.DropWeight <= 0 {
		m.DropWeight = d.DropWeight
	}
	if m.BacklogWeight <= 0 {
		m.BacklogWeight = d.BacklogWeight
	}
	if m.Hysteresis <= 0 {
		m.Hysteresis = d.Hysteresis
	}
	if m.ECMPSpread <= 0 {
		m.ECMPSpread = d.ECMPSpread
	}
	if m.MaxPaths <= 0 {
		m.MaxPaths = d.MaxPaths
	}
	if m.DropDecay <= 0 || m.DropDecay > 1 {
		m.DropDecay = d.DropDecay
	}
	return m
}

// View is the dynamic replacement for Table: the same link graph scored
// by a CostModel over live health samples. Routes are weighted shortest
// paths recomputed only when some link's cost drifts past the
// hysteresis threshold; chain pairs with several near-equal-cost paths
// split flows across them by deterministic weighted hashing of
// (sender, sequence), so a given flow is sticky but the aggregate load
// spreads. All tie-breaks are canonical or seeded — two same-seed runs
// observing the same health route identically.
type View struct {
	model CostModel
	seed  int64

	links  []Link
	ids    []string // canonical link IDs, sorted
	chains []string

	samples  map[string]LinkHealth
	dropEWMA map[string]float64
	lastDead map[string]uint64

	effective  map[string]float64 // costs backing the current path table
	paths      map[string][]scoredPath
	recomputes int
}

// scoredPath is one retained route with the cost it was computed at.
type scoredPath struct {
	hops []Hop
	cost float64
}

// NewView builds the dynamic view over links. With no health samples
// every link costs BaseCost, so the initial table is hop-count shortest
// paths — the static table's behaviour. seed feeds the deterministic
// tie-break and ECMP hashing.
func NewView(links []Link, model CostModel, seed int64) *View {
	v := &View{
		model:    model.withDefaults(),
		seed:     seed,
		links:    append([]Link(nil), links...),
		samples:  make(map[string]LinkHealth),
		dropEWMA: make(map[string]float64),
		lastDead: make(map[string]uint64),
	}
	seen := make(map[string]bool)
	chains := make(map[string]bool)
	for _, l := range v.links {
		id := LinkID(l.A, l.B)
		if !seen[id] {
			seen[id] = true
			v.ids = append(v.ids, id)
		}
		chains[l.A] = true
		chains[l.B] = true
	}
	sort.Strings(v.ids)
	for c := range chains {
		v.chains = append(v.chains, c)
	}
	sort.Strings(v.chains)
	v.effective = v.freshCosts()
	v.rebuild()
	return v
}

// Chains lists every chain in the graph, sorted.
func (v *View) Chains() []string { return v.chains }

// Recomputes reports how many times health drift rebuilt the table
// (the initial build does not count).
func (v *View) Recomputes() int { return v.recomputes }

// Cost returns the effective cost of link id in the live table.
func (v *View) Cost(id string) float64 {
	if c, ok := v.effective[id]; ok {
		return c
	}
	return v.model.BaseCost
}

// Observe records a health sample for link id (canonical LinkID). The
// dead-letter counter is cumulative; Observe folds its delta into the
// drop EWMA. Samples take effect at the next Refresh.
func (v *View) Observe(id string, h LinkHealth) {
	delta := float64(0)
	if h.DeadLetters > v.lastDead[id] {
		delta = float64(h.DeadLetters - v.lastDead[id])
	}
	v.lastDead[id] = h.DeadLetters
	v.dropEWMA[id] = v.model.DropDecay*delta + (1-v.model.DropDecay)*v.dropEWMA[id]
	v.samples[id] = h
}

// freshCosts scores every link from the latest samples.
func (v *View) freshCosts() map[string]float64 {
	costs := make(map[string]float64, len(v.ids))
	for _, id := range v.ids {
		h := v.samples[id]
		costs[id] = v.model.BaseCost +
			v.model.LatencyWeight*h.Latency +
			v.model.DropWeight*v.dropEWMA[id] +
			v.model.BacklogWeight*float64(h.Backlog)
	}
	return costs
}

// Refresh recomputes link costs from the observed samples and rebuilds
// the path table if any link's cost moved more than the hysteresis
// fraction away from the cost backing the current table. Returns true
// when the table was rebuilt.
func (v *View) Refresh() bool {
	fresh := v.freshCosts()
	trigger := false
	for _, id := range v.ids {
		old := v.effective[id]
		if old <= 0 {
			old = v.model.BaseCost
		}
		if math.Abs(fresh[id]-old)/old > v.model.Hysteresis {
			trigger = true
			break
		}
	}
	if !trigger {
		return false
	}
	v.effective = fresh
	v.rebuild()
	v.recomputes++
	return true
}

// rebuild enumerates, for every ordered chain pair, all simple paths in
// canonical adjacency order, keeps the cheapest and every path within
// ECMPSpread of it (capped at MaxPaths), and sorts the survivors by
// (cost, hop count, canonical chain sequence). Enumeration order is a
// pure function of the link set, so permuting link declarations cannot
// change the result.
func (v *View) rebuild() {
	adj := make(map[string][]edge)
	for _, l := range v.links {
		adj[l.A] = append(adj[l.A], edge{to: l.B, hop: Hop{From: l.A, To: l.B, Port: l.PortA, Channel: l.ChannelA, DestPort: l.PortB, DestChannel: l.ChannelB}})
		adj[l.B] = append(adj[l.B], edge{to: l.A, hop: Hop{From: l.B, To: l.A, Port: l.PortB, Channel: l.ChannelB, DestPort: l.PortA, DestChannel: l.ChannelA}})
	}
	for name, edges := range adj {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].to != edges[j].to {
				return edges[i].to < edges[j].to
			}
			return edges[i].hop.Channel < edges[j].hop.Channel
		})
		adj[name] = edges
	}

	v.paths = make(map[string][]scoredPath)
	for _, src := range v.chains {
		for _, dst := range v.chains {
			if src == dst {
				continue
			}
			found := v.enumerate(adj, src, dst)
			if len(found) == 0 {
				continue
			}
			sort.Slice(found, func(i, j int) bool {
				if found[i].cost != found[j].cost {
					return found[i].cost < found[j].cost
				}
				if len(found[i].hops) != len(found[j].hops) {
					return len(found[i].hops) < len(found[j].hops)
				}
				return pathString(found[i].hops) < pathString(found[j].hops)
			})
			best := found[0].cost
			limit := best * (1 + v.model.ECMPSpread)
			kept := found[:0]
			for _, p := range found {
				if p.cost > limit || len(kept) >= v.model.MaxPaths {
					break
				}
				kept = append(kept, p)
			}
			v.paths[routeKey(src, dst)] = append([]scoredPath(nil), kept...)
		}
	}
}

// enumerate walks every simple path src->dst depth-first in canonical
// adjacency order, scoring each by the sum of its links' effective
// costs.
func (v *View) enumerate(adj map[string][]edge, src, dst string) []scoredPath {
	var out []scoredPath
	onPath := map[string]bool{src: true}
	var hops []Hop
	var walk func(cur string, cost float64)
	walk = func(cur string, cost float64) {
		if cur == dst {
			out = append(out, scoredPath{hops: append([]Hop(nil), hops...), cost: cost})
			return
		}
		for _, e := range adj[cur] {
			if onPath[e.to] {
				continue
			}
			onPath[e.to] = true
			hops = append(hops, e.hop)
			walk(e.to, cost+v.Cost(LinkID(cur, e.to)))
			hops = hops[:len(hops)-1]
			onPath[e.to] = false
		}
	}
	walk(src, 0)
	return out
}

// pathString renders the chain sequence of a path for canonical
// ordering.
func pathString(hops []Hop) string {
	var b strings.Builder
	for i, h := range hops {
		if i == 0 {
			b.WriteString(h.From)
		}
		b.WriteByte(' ')
		b.WriteString(h.To)
		b.WriteByte('/')
		b.WriteString(string(h.Channel))
	}
	return b.String()
}

// Paths returns the current multi-path set for src->dst, cheapest
// first. The slice is shared — callers must not mutate it.
func (v *View) Paths(src, dst string) [][]Hop {
	set := v.paths[routeKey(src, dst)]
	out := make([][]Hop, len(set))
	for i, p := range set {
		out[i] = p.hops
	}
	return out
}

// Route returns the current best path src->dst. When several retained
// paths tie at exactly the best cost the choice is a deterministic
// seeded hash of (src, dst) — stable within a run, reproducible across
// same-seed runs, and not biased toward declaration order.
func (v *View) Route(src, dst string) ([]Hop, error) {
	set, err := v.routeSet(src, dst)
	if err != nil {
		return nil, err
	}
	tied := 1
	for tied < len(set) && set[tied].cost == set[0].cost {
		tied++
	}
	if tied == 1 {
		return set[0].hops, nil
	}
	return set[flowHash(v.seed, "route", src+" "+dst, 0)%uint64(tied)].hops, nil
}

// RouteFlow picks a path for one packet of a flow: equal-cost
// multi-path by weighted deterministic hashing of (sender, sequence).
// Each retained path is weighted by bestCost/cost, so exact ties split
// evenly and near-ties shade toward the cheaper arm. The hash is seeded
// — the same (seed, sender, sequence) always takes the same arm.
func (v *View) RouteFlow(src, dst, sender string, seq uint64) ([]Hop, error) {
	set, err := v.routeSet(src, dst)
	if err != nil {
		return nil, err
	}
	if len(set) == 1 {
		return set[0].hops, nil
	}
	total := 0.0
	weights := make([]float64, len(set))
	for i, p := range set {
		w := set[0].cost / p.cost
		weights[i] = w
		total += w
	}
	r := float64(flowHash(v.seed, "ecmp", sender, seq)%(1<<53)) / (1 << 53) * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return set[i].hops, nil
		}
	}
	return set[len(set)-1].hops, nil
}

// routeSet fetches the retained path set with the typed errors Route
// and RouteFlow share.
func (v *View) routeSet(src, dst string) ([]scoredPath, error) {
	if src == dst {
		return nil, fmt.Errorf("%w: %s->%s", ErrSameChain, src, dst)
	}
	set := v.paths[routeKey(src, dst)]
	if len(set) == 0 {
		return nil, fmt.Errorf("%w: %s->%s", ErrNoRoute, src, dst)
	}
	return set, nil
}

// flowHash is the deterministic seeded hash behind tie-breaks and ECMP:
// FNV-1a over (seed, kind, key, seq).
func flowHash(seed int64, kind, key string, seq uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u := uint64(seed)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(kind))
	h.Write([]byte(key))
	u = seq
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}
