package netsim

import (
	"errors"
	"time"

	"repro/internal/telemetry"
)

// ErrDeadLetter is delivered to the caller when a reliable call exhausts
// its retry budget without an acknowledgement.
var ErrDeadLetter = errors.New("netsim: dead letter: retries exhausted")

// RetryPolicy shapes ReliableCall's exponential backoff.
type RetryPolicy struct {
	// Timeout is the first attempt's acknowledgement deadline.
	Timeout time.Duration
	// Backoff multiplies the timeout after each miss (>= 1).
	Backoff float64
	// MaxTimeout caps the grown timeout.
	MaxTimeout time.Duration
	// MaxAttempts bounds the attempt count (0 = retry forever). Daemons
	// that must not lose work — validator signing, relayer packet
	// delivery — retry forever; the IBC layer's sealed receipts make the
	// resulting at-least-once delivery exactly-once end to end.
	MaxAttempts int
}

// DefaultRetryPolicy is tuned to the host/cp block cadence: a lost
// submission is re-sent within seconds and backs off to minute scale
// during long partitions.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:    10 * time.Second,
		Backoff:    2,
		MaxTimeout: 5 * time.Minute,
	}
}

// RetryObserver receives retry accounting (all fields nil-safe).
type RetryObserver struct {
	// Retries counts re-issued attempts.
	Retries *telemetry.Counter
	// DeadLetters counts calls abandoned after MaxAttempts.
	DeadLetters *telemetry.Counter
	// Attempts observes the attempt count of each completed call.
	Attempts *telemetry.Histogram
}

// ReliableCall issues a call and re-issues it with exponential backoff
// until a reply arrives or MaxAttempts is exhausted (then cb receives
// ErrDeadLetter). Together with idempotent handlers this provides
// at-least-once delivery; cb fires exactly once either way. On the
// lossless fast path the first attempt completes synchronously and no
// retry timer is ever armed.
func (e *Endpoint) ReliableCall(to NodeID, kind string, payload any, p RetryPolicy, obs RetryObserver, cb func(resp any, err error)) {
	if p.Timeout <= 0 {
		p.Timeout = DefaultRetryPolicy().Timeout
	}
	if p.Backoff < 1 {
		p.Backoff = DefaultRetryPolicy().Backoff
	}
	if p.MaxTimeout <= 0 {
		p.MaxTimeout = DefaultRetryPolicy().MaxTimeout
	}
	done := false
	attempts := 0
	timeout := p.Timeout
	var attempt func()
	attempt = func() {
		attempts++
		completed := e.Call(to, kind, payload, func(resp any, err error) {
			if done {
				return // a duplicated reply, or one racing the dead-letter timer
			}
			done = true
			obs.Attempts.Observe(float64(attempts))
			cb(resp, err)
		})
		if completed {
			return
		}
		e.net.sched.After(timeout, func() {
			if done {
				return
			}
			if p.MaxAttempts > 0 && attempts >= p.MaxAttempts {
				done = true
				obs.DeadLetters.Inc()
				obs.Attempts.Observe(float64(attempts))
				cb(nil, ErrDeadLetter)
				return
			}
			obs.Retries.Inc()
			timeout = time.Duration(float64(timeout) * p.Backoff)
			if timeout > p.MaxTimeout {
				timeout = p.MaxTimeout
			}
			attempt()
		})
	}
	attempt()
}
