// Package netsim is the simulated network between the deployment's
// actors: validator daemons, the relayer, fishermen, the host chain's RPC
// front-end, and the counterparty's RPC front-end. Every directed link
// has a latency distribution plus drop / duplicate / reorder
// probabilities, and scripted fault windows (node crashes, partitions)
// can be injected on top — all driven by the shared sim.Scheduler and a
// seeded RNG, so chaos runs stay bit-reproducible.
//
// The zero-value LinkConfig is a lossless, zero-latency link. Messages on
// such links (with no crash or partition in effect) are delivered
// synchronously, without touching the scheduler or the RNG: with faults
// off the transport is behaviour-preserving and the existing figures
// reproduce bit-identically.
//
// Delivery is at-most-once per send; reliability is layered on top with
// Endpoint.ReliableCall (retry with exponential backoff), and
// exactly-once application semantics come from the IBC layer's sealed
// receipts plus idempotent call handlers — see DESIGN.md §10.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// NodeID names an actor on the simulated network.
type NodeID string

// Well-known nodes of a deployment.
const (
	// HostNode is the host chain's RPC front-end (submission endpoint).
	HostNode NodeID = "host"
	// CPNode is the counterparty chain's RPC front-end.
	CPNode NodeID = "cp"
	// RelayerNode is the relayer daemon.
	RelayerNode NodeID = "relayer"
)

// ValidatorNode names the i-th validator daemon.
func ValidatorNode(i int) NodeID { return NodeID(fmt.Sprintf("validator-%d", i)) }

// ChainNode names the RPC front-end of a mesh chain. The legacy pair's
// counterparty keeps the well-known CPNode id.
func ChainNode(name string) NodeID { return NodeID("chain-" + name) }

// LinkRelayerNode names the relayer daemon serving mesh link id ("a-b").
func LinkRelayerNode(id string) NodeID { return NodeID("link-" + id) }

// FishermanNode names the i-th fisherman daemon.
func FishermanNode(i int) NodeID { return NodeID(fmt.Sprintf("fisherman-%d", i)) }

// Handler consumes one-way messages addressed to a node.
type Handler func(from NodeID, kind string, payload any)

// CallHandler serves request/response calls addressed to a node.
type CallHandler func(from NodeID, kind string, payload any) (any, error)

// LinkConfig parameterises one directed link. The zero value is a
// perfect link: zero latency, no loss.
type LinkConfig struct {
	// Latency delays each delivery (nil = synchronous).
	Latency sim.Dist
	// Drop is the probability a message copy is lost in transit.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back by ReorderDelay,
	// letting later traffic overtake it.
	Reorder float64
	// ReorderDelay is the hold-back applied to reordered messages
	// (default 500ms when Reorder > 0).
	ReorderDelay time.Duration
}

// lossless reports whether the link never needs the scheduler or RNG.
func (c LinkConfig) lossless() bool {
	return c.Latency == nil && c.Drop == 0 && c.Duplicate == 0 && c.Reorder == 0
}

// Config is a scenario-level network description: the default link plus
// scripted fault windows, all relative to the scenario start.
type Config struct {
	// Seed drives the transport's own RNG (drops, jitter). Independent of
	// the actor seeds so lossless runs draw nothing from it.
	Seed int64
	// Default applies to every link without an explicit SetLink.
	Default LinkConfig
	// Partitions and Crashes are scheduled by ScheduleFaults.
	Partitions []PartitionWindow
	Crashes    []CrashWindow
}

// node is one registered actor.
type node struct {
	handler Handler
	calls   CallHandler
	crashed bool
}

// link carries one directed link's config and lazily-registered counters.
type link struct {
	cfg       LinkConfig
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
}

type linkKey struct{ from, to NodeID }

// pendingCall tracks an outstanding request awaiting its reply.
type pendingCall struct {
	cb func(resp any, err error)
}

// envelope is one message in flight.
type envelope struct {
	from, to NodeID
	kind     string
	payload  any
	// callID links a request to its reply (0 for one-way sends).
	callID  uint64
	isReply bool
	resp    any
	err     error
}

// Network is the message fabric between all registered nodes.
type Network struct {
	sched *sim.Scheduler
	rng   *rand.Rand
	cfg   Config

	nodes map[NodeID]*node
	links map[linkKey]*link

	// partitions holds the active partition windows (group pairs).
	partitions []activePartition

	nextCall uint64
	pending  map[uint64]*pendingCall

	reg *telemetry.Registry // nil-safe

	mSent          *telemetry.Counter
	mDelivered     *telemetry.Counter
	mDropped       *telemetry.Counter
	mDropCrash     *telemetry.Counter
	mDropPartition *telemetry.Counter
	mDuplicated    *telemetry.Counter
	mReordered     *telemetry.Counter
	mLateReplies   *telemetry.Counter
	gPartitions    *telemetry.Gauge
	gCrashed       *telemetry.Gauge
}

type activePartition struct {
	a, b map[NodeID]bool
}

// Option configures a Network.
type Option func(*Network)

// WithTelemetry registers the transport's counters and gauges in reg
// under the "netsim." prefix.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(n *Network) { n.reg = reg }
}

// New creates a network on the given scheduler. Fault windows in cfg are
// not armed until ScheduleFaults is called with the scenario start time.
func New(sched *sim.Scheduler, cfg Config, opts ...Option) *Network {
	n := &Network{
		sched:   sched,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cfg:     cfg,
		nodes:   make(map[NodeID]*node),
		links:   make(map[linkKey]*link),
		pending: make(map[uint64]*pendingCall),
	}
	for _, o := range opts {
		o(n)
	}
	n.mSent = n.reg.Counter("netsim.sent")
	n.mDelivered = n.reg.Counter("netsim.delivered")
	n.mDropped = n.reg.Counter("netsim.dropped")
	n.mDropCrash = n.reg.Counter("netsim.dropped_crash")
	n.mDropPartition = n.reg.Counter("netsim.dropped_partition")
	n.mDuplicated = n.reg.Counter("netsim.duplicated")
	n.mReordered = n.reg.Counter("netsim.reordered")
	n.mLateReplies = n.reg.Counter("netsim.late_replies")
	n.gPartitions = n.reg.Gauge("netsim.partitions_active")
	n.gCrashed = n.reg.Gauge("netsim.crashed_nodes")
	return n
}

// Scheduler exposes the network's scheduler (for retry timers).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Node registers an actor and returns its endpoint. handler serves
// one-way messages, calls serves request/response calls; either may be
// nil for nodes that only originate traffic.
func (n *Network) Node(id NodeID, handler Handler, calls CallHandler) *Endpoint {
	n.nodes[id] = &node{handler: handler, calls: calls}
	return &Endpoint{net: n, id: id}
}

// Endpoint returns an endpoint for a registered node.
func (n *Network) Endpoint(id NodeID) *Endpoint {
	return &Endpoint{net: n, id: id}
}

// SetLink configures the directed link from -> to.
func (n *Network) SetLink(from, to NodeID, cfg LinkConfig) {
	n.links[linkKey{from, to}] = &link{cfg: cfg}
}

// SetLinkBoth configures both directions between a and b.
func (n *Network) SetLinkBoth(a, b NodeID, cfg LinkConfig) {
	n.SetLink(a, b, cfg)
	n.SetLink(b, a, cfg)
}

// link returns the directed link record, creating it from the default
// config on first use.
func (n *Network) linkFor(from, to NodeID) *link {
	key := linkKey{from, to}
	if lk, ok := n.links[key]; ok {
		return lk
	}
	lk := &link{cfg: n.cfg.Default}
	n.links[key] = lk
	return lk
}

// linkCounters lazily registers the per-link telemetry counters; perfect
// links that never drop stay out of the registry until first use.
func (lk *link) counters(n *Network, from, to NodeID) {
	if lk.delivered == nil && n.reg != nil {
		prefix := fmt.Sprintf("netsim.link.%s->%s.", from, to)
		lk.delivered = n.reg.Counter(prefix + "delivered")
		lk.dropped = n.reg.Counter(prefix + "dropped")
	}
}

// crashed reports whether id is inside a crash window.
func (n *Network) crashed(id NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.crashed
}

// partitioned reports whether a and b are on opposite sides of an active
// partition.
func (n *Network) partitioned(a, b NodeID) bool {
	for _, p := range n.partitions {
		if (p.a[a] && p.b[b]) || (p.a[b] && p.b[a]) {
			return true
		}
	}
	return false
}

// callTTL bounds how long an unanswered request stays in the pending
// table; reliable callers re-issue well before this.
const callTTL = 2 * time.Hour

// send routes one envelope, applying link faults. It reports whether the
// envelope (and, for calls, its reply) completed synchronously.
func (n *Network) send(env *envelope) bool {
	n.mSent.Inc()
	lk := n.linkFor(env.from, env.to)
	// Fault checks at send time: a crashed node neither sends nor
	// receives; partitions sever the pair in both directions.
	if n.crashed(env.from) || n.crashed(env.to) {
		n.drop(lk, env, n.mDropCrash)
		return false
	}
	if n.partitioned(env.from, env.to) {
		n.drop(lk, env, n.mDropPartition)
		return false
	}
	cfg := lk.cfg
	if cfg.lossless() {
		return n.deliver(env, lk)
	}
	copies := 1
	if cfg.Duplicate > 0 && n.rng.Float64() < cfg.Duplicate {
		copies = 2
		n.mDuplicated.Inc()
	}
	for i := 0; i < copies; i++ {
		if cfg.Drop > 0 && n.rng.Float64() < cfg.Drop {
			n.drop(lk, env, nil)
			continue
		}
		var delay time.Duration
		if cfg.Latency != nil {
			delay = cfg.Latency.Sample(n.rng)
		}
		if cfg.Reorder > 0 && n.rng.Float64() < cfg.Reorder {
			hold := cfg.ReorderDelay
			if hold <= 0 {
				hold = 500 * time.Millisecond
			}
			delay += hold
			n.mReordered.Inc()
		}
		env := env
		n.sched.After(delay, func() {
			// Fault checks again at arrival time: windows that opened
			// while the message was in flight still eat it.
			if n.crashed(env.to) {
				n.drop(lk, env, n.mDropCrash)
				return
			}
			if n.partitioned(env.from, env.to) {
				n.drop(lk, env, n.mDropPartition)
				return
			}
			n.deliver(env, lk)
		})
	}
	return false
}

// drop counts a lost envelope. cause is the crash/partition counter, nil
// for random link loss.
func (n *Network) drop(lk *link, env *envelope, cause *telemetry.Counter) {
	lk.counters(n, env.from, env.to)
	n.mDropped.Inc()
	lk.dropped.Inc()
	if cause != nil {
		cause.Inc()
	}
}

// deliver hands an envelope to its destination node. Reports whether a
// call's reply also completed synchronously.
func (n *Network) deliver(env *envelope, lk *link) bool {
	lk.counters(n, env.from, env.to)
	n.mDelivered.Inc()
	lk.delivered.Inc()
	nd := n.nodes[env.to]
	if nd == nil {
		return false
	}
	switch {
	case env.isReply:
		pc, ok := n.pending[env.callID]
		if !ok {
			// The caller gave up (TTL) or a duplicate reply raced a
			// faster copy; idempotent handlers make this harmless.
			n.mLateReplies.Inc()
			return false
		}
		delete(n.pending, env.callID)
		pc.cb(env.resp, env.err)
		return true
	case env.callID != 0:
		if nd.calls == nil {
			return false
		}
		resp, err := nd.calls(env.from, env.kind, env.payload)
		reply := &envelope{
			from:    env.to,
			to:      env.from,
			kind:    env.kind,
			callID:  env.callID,
			isReply: true,
			resp:    resp,
			err:     err,
		}
		return n.send(reply)
	default:
		if nd.handler != nil {
			nd.handler(env.from, env.kind, env.payload)
		}
		return false
	}
}

// Endpoint is a node's handle for originating traffic.
type Endpoint struct {
	net *Network
	id  NodeID
}

// ID returns the endpoint's node.
func (e *Endpoint) ID() NodeID { return e.id }

// Network returns the owning network.
func (e *Endpoint) Network() *Network { return e.net }

// Send delivers a one-way message (at-most-once).
func (e *Endpoint) Send(to NodeID, kind string, payload any) {
	e.net.send(&envelope{from: e.id, to: to, kind: kind, payload: payload})
}

// Call issues a request and invokes cb with the reply. At-most-once: if
// the request or the reply is lost, cb never fires. It reports whether
// the call completed synchronously (lossless path) — callers use this to
// skip arming retry timers.
func (e *Endpoint) Call(to NodeID, kind string, payload any, cb func(resp any, err error)) bool {
	n := e.net
	n.nextCall++
	id := n.nextCall
	completed := false
	n.pending[id] = &pendingCall{cb: func(resp any, err error) {
		completed = true
		cb(resp, err)
	}}
	n.send(&envelope{from: e.id, to: to, kind: kind, payload: payload, callID: id})
	if !completed {
		// Bound the pending table: forget the call if no reply arrives
		// within the TTL (reliable callers will have re-issued it).
		n.sched.After(callTTL, func() { delete(n.pending, id) })
	}
	return completed
}
