package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

var t0 = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)

func newNet(t *testing.T, cfg Config) (*sim.Scheduler, *Network, *telemetry.Registry) {
	t.Helper()
	sched := sim.NewScheduler(t0)
	reg := telemetry.NewRegistry()
	return sched, New(sched, cfg, WithTelemetry(reg)), reg
}

func TestLosslessDeliversInline(t *testing.T) {
	sched, net, _ := newNet(t, Config{})
	var got []string
	net.Node("a", nil, nil)
	net.Node("b", func(from NodeID, kind string, payload any) {
		got = append(got, kind+":"+payload.(string))
	}, func(from NodeID, kind string, payload any) (any, error) {
		return "pong", nil
	})
	ep := net.Endpoint("a")
	ep.Send("b", "hello", "x")
	if len(got) != 1 || got[0] != "hello:x" {
		t.Fatalf("send not delivered inline: %v", got)
	}
	var resp any
	completed := ep.Call("b", "ping", nil, func(r any, err error) { resp = r })
	if !completed || resp != "pong" {
		t.Fatalf("call completed=%v resp=%v, want inline pong", completed, resp)
	}
	if n := sched.Pending(); n != 0 {
		t.Fatalf("lossless path scheduled %d events, want 0", n)
	}
}

func TestLatencyDefersDelivery(t *testing.T) {
	sched, net, _ := newNet(t, Config{Default: LinkConfig{Latency: sim.Constant(2 * time.Second)}})
	net.Node("a", nil, nil)
	var at time.Time
	net.Node("b", func(NodeID, string, any) { at = sched.Now() }, nil)
	net.Endpoint("a").Send("b", "k", nil)
	if !at.IsZero() {
		t.Fatal("latency link delivered inline")
	}
	sched.RunFor(5 * time.Second)
	if want := t0.Add(2 * time.Second); !at.Equal(want) {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestDropAndDuplicate(t *testing.T) {
	_, net, reg := newNet(t, Config{Default: LinkConfig{Drop: 1}})
	net.Node("a", nil, nil)
	calls := 0
	net.Node("b", func(NodeID, string, any) { calls++ }, nil)
	net.Endpoint("a").Send("b", "k", nil)
	if calls != 0 {
		t.Fatal("Drop=1 still delivered")
	}
	if got := reg.Counter("netsim.dropped").Value(); got != 1 {
		t.Fatalf("netsim.dropped = %d, want 1", got)
	}

	sched2, net2, reg2 := newNet(t, Config{Default: LinkConfig{Duplicate: 1}})
	net2.Node("a", nil, nil)
	calls2 := 0
	net2.Node("b", func(NodeID, string, any) { calls2++ }, nil)
	net2.Endpoint("a").Send("b", "k", nil)
	sched2.RunFor(time.Second)
	if calls2 != 2 {
		t.Fatalf("Duplicate=1 delivered %d times, want 2", calls2)
	}
	if got := reg2.Counter("netsim.duplicated").Value(); got != 1 {
		t.Fatalf("netsim.duplicated = %d, want 1", got)
	}
}

func TestReorderHoldsBack(t *testing.T) {
	// First message reordered (held 1s), second delivered immediately:
	// arrival order inverts.
	sched, net, _ := newNet(t, Config{})
	net.SetLink("a", "b", LinkConfig{Reorder: 1, ReorderDelay: time.Second})
	net.Node("a", nil, nil)
	var order []string
	net.Node("b", func(_ NodeID, kind string, _ any) { order = append(order, kind) }, nil)
	ep := net.Endpoint("a")
	ep.Send("b", "first", nil)
	net.SetLink("a", "b", LinkConfig{})
	ep.Send("b", "second", nil)
	sched.RunFor(2 * time.Second)
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("order = %v, want [second first]", order)
	}
}

func TestPartitionWindow(t *testing.T) {
	_, net, reg := newNet(t, Config{
		Partitions: []PartitionWindow{{A: []NodeID{"a"}, B: []NodeID{"b"}, From: time.Hour, Duration: time.Hour}},
	})
	net.Node("a", nil, nil)
	calls := 0
	net.Node("b", func(NodeID, string, any) { calls++ }, nil)
	net.Node("c", func(NodeID, string, any) { calls++ }, nil)
	net.ScheduleFaults(t0)
	ep := net.Endpoint("a")
	sched := net.Scheduler()

	sched.RunFor(30 * time.Minute)
	ep.Send("b", "k", nil) // before the window
	sched.RunFor(60 * time.Minute)
	ep.Send("b", "k", nil) // inside the window: severed
	ep.Send("c", "k", nil) // other nodes unaffected
	if got := reg.Gauge("netsim.partitions_active").Value(); got != 1 {
		t.Fatalf("partitions_active = %d, want 1", got)
	}
	sched.RunFor(60 * time.Minute)
	ep.Send("b", "k", nil) // healed
	if calls != 3 {
		t.Fatalf("delivered %d, want 3", calls)
	}
	if got := reg.Counter("netsim.dropped_partition").Value(); got != 1 {
		t.Fatalf("dropped_partition = %d, want 1", got)
	}
	if got := reg.Gauge("netsim.partitions_active").Value(); got != 0 {
		t.Fatalf("partitions_active after heal = %d, want 0", got)
	}
}

func TestCrashWindowEatsInFlight(t *testing.T) {
	_, net, reg := newNet(t, Config{
		Default: LinkConfig{Latency: sim.Constant(10 * time.Second)},
		Crashes: []CrashWindow{{Node: "b", From: time.Minute, Duration: time.Minute}},
	})
	net.Node("a", nil, nil)
	calls := 0
	net.Node("b", func(NodeID, string, any) { calls++ }, nil)
	net.ScheduleFaults(t0)
	ep := net.Endpoint("a")
	sched := net.Scheduler()

	// Sent 5s before the crash, in flight when it hits: lost on arrival.
	sched.RunFor(55 * time.Second)
	ep.Send("b", "k", nil)
	sched.RunFor(30 * time.Second)
	if calls != 0 {
		t.Fatal("message delivered into a crashed node")
	}
	if got := reg.Counter("netsim.dropped_crash").Value(); got != 1 {
		t.Fatalf("dropped_crash = %d, want 1", got)
	}
	// After heal, traffic flows again.
	sched.RunFor(time.Hour)
	ep.Send("b", "k", nil)
	sched.RunFor(time.Minute)
	if calls != 1 {
		t.Fatalf("post-heal delivered %d, want 1", calls)
	}
}

func TestReliableCallRetriesThroughLoss(t *testing.T) {
	_, net, reg := newNet(t, Config{Seed: 3, Default: LinkConfig{Drop: 0.8, Latency: sim.Constant(100 * time.Millisecond)}})
	net.Node("a", nil, nil)
	served := 0
	net.Node("b", nil, func(NodeID, string, any) (any, error) {
		served++
		return served, nil
	})
	sched := net.Scheduler()
	retries := reg.Counter("test.retries")
	var resp any
	var respErr error
	done := false
	net.Endpoint("a").ReliableCall("b", "k", nil,
		RetryPolicy{Timeout: time.Second, Backoff: 1.5, MaxTimeout: 10 * time.Second},
		RetryObserver{Retries: retries},
		func(r any, err error) { resp, respErr, done = r, err, true })
	sched.RunFor(6 * time.Hour)
	if !done || respErr != nil {
		t.Fatalf("reliable call done=%v err=%v", done, respErr)
	}
	if served == 0 {
		t.Fatal("handler never served")
	}
	if resp == nil {
		t.Fatal("no response")
	}
	if retries.Value() == 0 {
		t.Fatal("60% loss produced no retries")
	}
}

func TestReliableCallDeadLetter(t *testing.T) {
	_, net, reg := newNet(t, Config{Default: LinkConfig{Drop: 1, Latency: sim.Constant(time.Millisecond)}})
	net.Node("a", nil, nil)
	net.Node("b", nil, func(NodeID, string, any) (any, error) { return nil, nil })
	sched := net.Scheduler()
	dead := reg.Counter("test.dead")
	var gotErr error
	fired := 0
	net.Endpoint("a").ReliableCall("b", "k", nil,
		RetryPolicy{Timeout: time.Second, MaxAttempts: 3},
		RetryObserver{DeadLetters: dead},
		func(_ any, err error) { gotErr = err; fired++ })
	sched.RunFor(time.Hour)
	if fired != 1 {
		t.Fatalf("callback fired %d times, want 1", fired)
	}
	if !errors.Is(gotErr, ErrDeadLetter) {
		t.Fatalf("err = %v, want ErrDeadLetter", gotErr)
	}
	if dead.Value() != 1 {
		t.Fatalf("dead letters = %d, want 1", dead.Value())
	}
}

func TestDuplicatedCallServedTwiceCallbackOnce(t *testing.T) {
	sched, net, _ := newNet(t, Config{Default: LinkConfig{Duplicate: 1, Latency: sim.Constant(time.Millisecond)}})
	net.Node("a", nil, nil)
	served := 0
	net.Node("b", nil, func(NodeID, string, any) (any, error) { served++; return nil, nil })
	fired := 0
	net.Endpoint("a").ReliableCall("b", "k", nil, DefaultRetryPolicy(), RetryObserver{},
		func(any, error) { fired++ })
	sched.RunFor(time.Minute)
	if served < 2 {
		t.Fatalf("handler served %d, want >= 2 (duplicate delivery)", served)
	}
	if fired != 1 {
		t.Fatalf("callback fired %d times, want exactly 1", fired)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() (delivered, dropped uint64) {
		sched, net, reg := newNet(t, Config{Seed: 11, Default: LinkConfig{
			Drop: 0.3, Duplicate: 0.1, Reorder: 0.1,
			Latency: sim.Uniform{Min: 10 * time.Millisecond, Max: 300 * time.Millisecond},
		}})
		net.Node("a", nil, nil)
		net.Node("b", func(NodeID, string, any) {}, nil)
		ep := net.Endpoint("a")
		for i := 0; i < 200; i++ {
			sched.RunFor(50 * time.Millisecond)
			ep.Send("b", "k", i)
		}
		sched.RunFor(time.Minute)
		return reg.Counter("netsim.delivered").Value(), reg.Counter("netsim.dropped").Value()
	}
	d1, x1 := run()
	d2, x2 := run()
	if d1 != d2 || x1 != x2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, x1, d2, x2)
	}
	if d1 == 0 || x1 == 0 {
		t.Fatalf("expected both deliveries (%d) and drops (%d)", d1, x1)
	}
}

func TestFlagParsers(t *testing.T) {
	if from, dur, err := ParseWindow("36h+2h"); err != nil || from != 36*time.Hour || dur != 2*time.Hour {
		t.Fatalf("ParseWindow: %v %v %v", from, dur, err)
	}
	if _, _, err := ParseWindow("36h"); err == nil {
		t.Fatal("ParseWindow accepted missing duration")
	}
	cw, err := ParseCrash("v1:648h+9h55m")
	if err != nil || cw.Node != ValidatorNode(1) || cw.From != 648*time.Hour || cw.Duration != 9*time.Hour+55*time.Minute {
		t.Fatalf("ParseCrash: %+v %v", cw, err)
	}
	pw, err := ParsePartition("20h+2h")
	if err != nil || len(pw.A) != 1 || pw.A[0] != RelayerNode || pw.B[0] != CPNode {
		t.Fatalf("ParsePartition default groups: %+v %v", pw, err)
	}
	pw, err = ParsePartition("relayer,fisherman-0|cp,host:1h+30m")
	if err != nil || len(pw.A) != 2 || len(pw.B) != 2 || pw.From != time.Hour || pw.Duration != 30*time.Minute {
		t.Fatalf("ParsePartition groups: %+v %v", pw, err)
	}
	if _, err := ParseNode("bogus"); err == nil {
		t.Fatal("ParseNode accepted bogus node")
	}
}
