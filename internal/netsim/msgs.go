package netsim

import (
	"repro/internal/host"
	"repro/internal/ibc"
)

// Wire message kinds. Notifications (one-way) carry chain heads; calls
// carry submissions and IBC handler operations.
const (
	// KindHostBlock notifies daemons of a new host block (host -> all).
	KindHostBlock = "host.block"
	// KindCPBlock notifies the relayer of a new counterparty block.
	KindCPBlock = "cp.block"
	// KindSubmitTx submits a host transaction (daemon -> host, call).
	KindSubmitTx = "host.submit"
	// KindUpdateClient runs UpdateClient on the counterparty (call).
	KindUpdateClient = "cp.update-client"
	// KindRecvPacket runs RecvPacket on the counterparty (call).
	KindRecvPacket = "cp.recv-packet"
	// KindAckPacket runs AcknowledgePacket on the counterparty (call).
	KindAckPacket = "cp.ack-packet"
	// KindTimeoutPacket runs TimeoutPacket on a chain front-end (call);
	// mesh link relayers use it to refund expired hops on Cosmos chains.
	KindTimeoutPacket = "cp.timeout-packet"
)

// MsgHostBlock is the KindHostBlock payload.
type MsgHostBlock struct {
	Block *host.Block
}

// MsgCPBlock is the KindCPBlock payload.
type MsgCPBlock struct {
	Height uint64
}

// MsgSubmitTx is the KindSubmitTx payload.
type MsgSubmitTx struct {
	Tx *host.Transaction
}

// MsgUpdateClient is the KindUpdateClient payload.
type MsgUpdateClient struct {
	ClientID ibc.ClientID
	Header   []byte
}

// MsgRecvPacket is the KindRecvPacket payload.
type MsgRecvPacket struct {
	Packet      *ibc.Packet
	Proof       []byte
	ProofHeight ibc.Height
}

// RespRecvPacket is the KindRecvPacket response.
type RespRecvPacket struct {
	// Ack is the acknowledgement the receiving chain wrote.
	Ack []byte
	// ProvableAt is the first receiver height whose root commits the ack.
	ProvableAt uint64
	// Duplicate marks a replayed delivery: the packet had already been
	// received (by a retry of the same relayer, or by a competing relayer
	// that won the race) and Ack is the recorded acknowledgement. The
	// idempotent front-end reports success either way; Duplicate lets the
	// losing relayer count the lost race instead of double-counting a
	// delivery.
	Duplicate bool
}

// MsgAckPacket is the KindAckPacket payload.
type MsgAckPacket struct {
	Packet      *ibc.Packet
	Ack         []byte
	Proof       []byte
	ProofHeight ibc.Height
}

// MsgTimeoutPacket is the KindTimeoutPacket payload. Proof is receipt
// non-membership (unordered channels) at ProofHeight on the destination.
type MsgTimeoutPacket struct {
	Packet      *ibc.Packet
	Proof       []byte
	ProofHeight ibc.Height
}
