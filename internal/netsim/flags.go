package netsim

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Flag-spec parsers for cmd/guestsim's -net-* scenario flags.

// ParseWindow parses "START+DURATION" (e.g. "36h+2h") into a fault
// window's offsets.
func ParseWindow(s string) (from, dur time.Duration, err error) {
	lhs, rhs, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("netsim: window %q: want START+DURATION (e.g. 36h+2h)", s)
	}
	if from, err = time.ParseDuration(lhs); err != nil {
		return 0, 0, fmt.Errorf("netsim: window start %q: %w", lhs, err)
	}
	if dur, err = time.ParseDuration(rhs); err != nil {
		return 0, 0, fmt.Errorf("netsim: window duration %q: %w", rhs, err)
	}
	return from, dur, nil
}

// ParseNode parses a node spec: the well-known names ("host", "cp",
// "relayer"), "validator-N" / "vN", or "fisherman-N" / "fN".
func ParseNode(s string) (NodeID, error) {
	switch s {
	case "host":
		return HostNode, nil
	case "cp":
		return CPNode, nil
	case "relayer":
		return RelayerNode, nil
	}
	for prefix, mk := range map[string]func(int) NodeID{
		"validator-": ValidatorNode, "v": ValidatorNode,
		"fisherman-": FishermanNode, "f": FishermanNode,
	} {
		if rest, ok := strings.CutPrefix(s, prefix); ok {
			if i, err := strconv.Atoi(rest); err == nil && i >= 0 {
				return mk(i), nil
			}
		}
	}
	return "", fmt.Errorf("netsim: unknown node %q", s)
}

// ParseCrash parses "NODE:START+DURATION" (e.g. "v0:648h+9h55m").
func ParseCrash(s string) (CrashWindow, error) {
	nodeSpec, windowSpec, ok := strings.Cut(s, ":")
	if !ok {
		return CrashWindow{}, fmt.Errorf("netsim: crash %q: want NODE:START+DURATION", s)
	}
	id, err := ParseNode(nodeSpec)
	if err != nil {
		return CrashWindow{}, err
	}
	from, dur, err := ParseWindow(windowSpec)
	if err != nil {
		return CrashWindow{}, err
	}
	return CrashWindow{Node: id, From: from, Duration: dur}, nil
}

// ParsePartition parses "A|B:START+DURATION" where A and B are
// comma-separated node lists (e.g. "relayer|cp:36h+2h"); a bare window
// defaults to partitioning the relayer from the counterparty.
func ParsePartition(s string) (PartitionWindow, error) {
	groupSpec := "relayer|cp"
	windowSpec := s
	if lhs, rhs, ok := strings.Cut(s, ":"); ok {
		groupSpec, windowSpec = lhs, rhs
	}
	aSpec, bSpec, ok := strings.Cut(groupSpec, "|")
	if !ok {
		return PartitionWindow{}, fmt.Errorf("netsim: partition groups %q: want A|B", groupSpec)
	}
	parseGroup := func(spec string) ([]NodeID, error) {
		var out []NodeID
		for _, part := range strings.Split(spec, ",") {
			id, err := ParseNode(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out = append(out, id)
		}
		return out, nil
	}
	a, err := parseGroup(aSpec)
	if err != nil {
		return PartitionWindow{}, err
	}
	b, err := parseGroup(bSpec)
	if err != nil {
		return PartitionWindow{}, err
	}
	from, dur, err := ParseWindow(windowSpec)
	if err != nil {
		return PartitionWindow{}, err
	}
	return PartitionWindow{A: a, B: b, From: from, Duration: dur}, nil
}
