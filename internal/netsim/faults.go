package netsim

import "time"

// CrashWindow takes one node offline for a span: it neither sends nor
// receives, and in-flight messages addressed to it are lost. This is how
// the §V-C validator-#1 outage is injected (core.DeploymentOutage).
type CrashWindow struct {
	Node NodeID
	// From is the window start relative to the scenario start.
	From     time.Duration
	Duration time.Duration
}

// PartitionWindow severs every link between group A and group B (both
// directions) for a span; traffic within each group is unaffected.
type PartitionWindow struct {
	A, B []NodeID
	// From is the window start relative to the scenario start.
	From     time.Duration
	Duration time.Duration
}

// ScheduleFaults arms the config's crash and partition windows on the
// scheduler, relative to start. Call once after wiring the nodes.
func (n *Network) ScheduleFaults(start time.Time) {
	for _, c := range n.cfg.Crashes {
		c := c
		n.sched.At(start.Add(c.From), func() { n.Crash(c.Node) })
		n.sched.At(start.Add(c.From+c.Duration), func() { n.Heal(c.Node) })
	}
	for _, p := range n.cfg.Partitions {
		p := p
		n.sched.At(start.Add(p.From), func() { n.Partition(p.A, p.B) })
		n.sched.At(start.Add(p.From+p.Duration), func() { n.HealPartition(p.A, p.B) })
	}
}

// Crash takes a node offline immediately.
func (n *Network) Crash(id NodeID) {
	nd, ok := n.nodes[id]
	if !ok || nd.crashed {
		return
	}
	nd.crashed = true
	n.gCrashed.Add(1)
}

// Heal brings a crashed node back online.
func (n *Network) Heal(id NodeID) {
	nd, ok := n.nodes[id]
	if !ok || !nd.crashed {
		return
	}
	nd.crashed = false
	n.gCrashed.Add(-1)
}

// Partition severs groups a and b immediately.
func (n *Network) Partition(a, b []NodeID) {
	n.partitions = append(n.partitions, activePartition{a: nodeSet(a), b: nodeSet(b)})
	n.gPartitions.Set(int64(len(n.partitions)))
}

// HealPartition removes the first active partition matching the groups.
func (n *Network) HealPartition(a, b []NodeID) {
	sa, sb := nodeSet(a), nodeSet(b)
	for i, p := range n.partitions {
		if setsEqual(p.a, sa) && setsEqual(p.b, sb) {
			n.partitions = append(n.partitions[:i], n.partitions[i+1:]...)
			break
		}
	}
	n.gPartitions.Set(int64(len(n.partitions)))
}

func nodeSet(ids []NodeID) map[NodeID]bool {
	m := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func setsEqual(a, b map[NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
