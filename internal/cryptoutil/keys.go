package cryptoutil

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
)

// PubKey is an Ed25519 public key. It doubles as an account / validator
// identity throughout the repository.
type PubKey [ed25519.PublicKeySize]byte

// Signature is an Ed25519 signature.
type Signature [ed25519.SignatureSize]byte

// PrivKey wraps an Ed25519 private key together with its public half.
type PrivKey struct {
	key ed25519.PrivateKey
	pub PubKey
}

// GenerateKey derives a deterministic Ed25519 keypair from a 32-byte seed
// derived from the given label. Deterministic keys make simulations and
// tests reproducible; the scheme is NOT suitable for production key
// management, which is out of scope for this reproduction.
func GenerateKey(label string) *PrivKey {
	seed := HashTagged('K', []byte(label))
	key := ed25519.NewKeyFromSeed(seed[:])
	var pub PubKey
	copy(pub[:], key.Public().(ed25519.PublicKey))
	return &PrivKey{key: key, pub: pub}
}

// GenerateKeyIndexed derives a deterministic keypair from a label and index,
// convenient for creating validator fleets.
func GenerateKeyIndexed(label string, i int) *PrivKey {
	return GenerateKey(fmt.Sprintf("%s/%d", label, i))
}

// Public returns the public key.
func (k *PrivKey) Public() PubKey { return k.pub }

// Sign signs msg and returns the signature.
func (k *PrivKey) Sign(msg []byte) Signature {
	var sig Signature
	copy(sig[:], ed25519.Sign(k.key, msg))
	return sig
}

// SignHash signs the 32 bytes of h.
func (k *PrivKey) SignHash(h Hash) Signature { return k.Sign(h[:]) }

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub PubKey, msg []byte, sig Signature) bool {
	return ed25519.Verify(pub[:], msg, sig[:])
}

// VerifyHash reports whether sig is a valid signature of h under pub.
func VerifyHash(pub PubKey, h Hash, sig Signature) bool {
	return Verify(pub, h[:], sig)
}

// IsZero reports whether the public key is all zeroes.
func (p PubKey) IsZero() bool { return p == PubKey{} }

// Short returns a short printable prefix of the key for logs.
func (p PubKey) Short() string {
	return fmt.Sprintf("%x", p[:4])
}

// String implements fmt.Stringer.
func (p PubKey) String() string { return fmt.Sprintf("%x", p[:]) }

// Compare orders public keys lexicographically.
func (p PubKey) Compare(q PubKey) int { return bytes.Compare(p[:], q[:]) }

// Uint64 folds the first 8 bytes of the key into a uint64; used for cheap
// deterministic tie-breaking.
func (p PubKey) Uint64() uint64 { return binary.BigEndian.Uint64(p[:8]) }
