package cryptoutil

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
)

// VerifyTask is one Ed25519 verification request submitted to a
// BatchVerifier. Msg is the raw signed message; for the common case of
// signatures over a 32-byte digest use HashTask.
type VerifyTask struct {
	Pub PubKey
	Msg []byte
	Sig Signature
}

// HashTask builds a VerifyTask for a signature over the 32 bytes of h.
// The returned task owns a copy of the digest, so h may be a loop-local
// value.
func HashTask(pub PubKey, h Hash, sig Signature) VerifyTask {
	msg := make([]byte, HashSize)
	copy(msg, h[:])
	return VerifyTask{Pub: pub, Msg: msg, Sig: sig}
}

// cacheKey uniquely identifies a (pubkey, message, signature) triple. The
// triple is folded through the tagged hash so arbitrary-length messages key
// a fixed-size entry.
func (t *VerifyTask) cacheKey() Hash {
	return HashTagged('V', t.Pub[:], t.Msg, t.Sig[:])
}

// sigCache is a mutex-protected bounded LRU of verification results. Only
// *valid* triples are stored: signature verification is a pure function, so
// a cached entry can never go stale, and refusing to cache failures keeps an
// attacker from churning the cache with garbage signatures.
type sigCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used; values are Hash keys
	m    map[Hash]*list.Element
}

func newSigCache(capacity int) *sigCache {
	return &sigCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[Hash]*list.Element, capacity),
	}
}

// contains reports whether key is cached, promoting it on hit.
func (c *sigCache) contains(key Hash) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	return ok
}

// add inserts key, evicting the least recently used entry when full.
func (c *sigCache) add(key Hash) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(Hash))
	}
	c.m[key] = c.ll.PushFront(key)
}

func (c *sigCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// BatchVerifier verifies sets of Ed25519 signatures across a sized worker
// pool with an optional bounded LRU cache of already-verified triples.
// Repeated light-client updates over the same validator set — or the same
// signed block checked by the light client, the precompile, and a fisherman
// — therefore pay for each Ed25519 verification once. The zero value is not
// ready; use NewBatchVerifier. All methods are safe for concurrent use.
type BatchVerifier struct {
	workers int
	cache   *sigCache

	hits   atomic.Uint64
	misses atomic.Uint64
}

// BatchOption configures a BatchVerifier.
type BatchOption func(*BatchVerifier)

// WithWorkers sets the worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) BatchOption {
	return func(v *BatchVerifier) {
		if n > 0 {
			v.workers = n
		}
	}
}

// WithCacheSize bounds the verification cache to n entries; n <= 0 disables
// caching entirely.
func WithCacheSize(n int) BatchOption {
	return func(v *BatchVerifier) {
		if n <= 0 {
			v.cache = nil
		} else {
			v.cache = newSigCache(n)
		}
	}
}

// DefaultCacheSize is the default bound of the verification cache. At ~100
// bytes an entry the cache tops out around a megabyte — far below the
// footprint of the 28-day deployment it serves, and enough to cover several
// epochs of a large validator fleet.
const DefaultCacheSize = 8192

// NewBatchVerifier returns a verifier with GOMAXPROCS workers and a
// DefaultCacheSize-entry cache unless configured otherwise.
func NewBatchVerifier(opts ...BatchOption) *BatchVerifier {
	v := &BatchVerifier{
		workers: runtime.GOMAXPROCS(0),
		cache:   newSigCache(DefaultCacheSize),
	}
	for _, o := range opts {
		o(v)
	}
	return v
}

// defaultVerifier serves the package-level quorum-verification paths. The
// cache is shared process-wide deliberately: verification is pure, so one
// subsystem's work (e.g. the relayer assembling an update) pays for
// another's re-check (e.g. the light client or a fisherman audit).
var defaultVerifier = NewBatchVerifier()

// DefaultBatchVerifier returns the shared process-wide verifier.
func DefaultBatchVerifier() *BatchVerifier { return defaultVerifier }

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	Len    int
	Cap    int
}

// Stats returns the verifier's cumulative cache counters and current size.
func (v *BatchVerifier) Stats() CacheStats {
	s := CacheStats{Hits: v.hits.Load(), Misses: v.misses.Load()}
	if v.cache != nil {
		s.Len = v.cache.len()
		s.Cap = v.cache.cap
	}
	return s
}

// Verify checks a single task through the cache.
func (v *BatchVerifier) Verify(t VerifyTask) bool {
	var key Hash
	if v.cache != nil {
		key = t.cacheKey()
		if v.cache.contains(key) {
			v.hits.Add(1)
			return true
		}
	}
	v.misses.Add(1)
	if !Verify(t.Pub, t.Msg, t.Sig) {
		return false
	}
	if v.cache != nil {
		v.cache.add(key)
	}
	return true
}

// VerifyAll reports whether every task in the batch carries a valid
// signature, fanning the work across the pool and cancelling outstanding
// work as soon as one invalid signature is found. Callers that need to
// identify the offending task (the rare failure path) should rescan with
// Verify, which yields the same first-invalid index a sequential loop
// would.
func (v *BatchVerifier) VerifyAll(tasks []VerifyTask) bool {
	results := v.run(tasks, true)
	for _, ok := range results {
		if !ok {
			return false
		}
	}
	return true
}

// VerifyEach verifies every task and returns per-task validity; unlike
// VerifyAll it never cancels early. Fishermen use it to screen a mixed
// stream of sightings where invalid entries are skipped, not fatal.
func (v *BatchVerifier) VerifyEach(tasks []VerifyTask) []bool {
	return v.run(tasks, false)
}

// run executes the batch. With failFast, a detected invalid signature stops
// workers from claiming further tasks; unclaimed tasks report false, which
// VerifyAll folds into the same overall verdict.
func (v *BatchVerifier) run(tasks []VerifyTask, failFast bool) []bool {
	results := make([]bool, len(tasks))
	workers := v.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i := range tasks {
			results[i] = v.Verify(tasks[i])
			if failFast && !results[i] {
				break
			}
		}
		return results
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failFast && stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				results[i] = v.Verify(tasks[i])
				if failFast && !results[i] {
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return results
}
