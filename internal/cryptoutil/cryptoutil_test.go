package cryptoutil

import (
	"testing"
	"testing/quick"
)

func TestHashHelpers(t *testing.T) {
	a := HashBytes([]byte("a"))
	b := HashBytes([]byte("b"))
	if a == b || a.IsZero() {
		t.Fatal("hashing broken")
	}
	if HashConcat([]byte("ab"), []byte("c")) != HashBytes([]byte("abc")) {
		t.Fatal("HashConcat inconsistent with HashBytes")
	}
	// Domain separation: tagged hashes differ from plain and per tag.
	if HashTagged('x', []byte("m")) == HashTagged('y', []byte("m")) {
		t.Fatal("tags not separating")
	}
	if HashUint64('u', 1) == HashUint64('u', 2) {
		t.Fatal("uint hashing collides")
	}
}

func TestHexRoundTrip(t *testing.T) {
	h := HashBytes([]byte("hex"))
	back, err := HashFromHex(h.Hex())
	if err != nil || back != h {
		t.Fatalf("round trip: %v %v", back, err)
	}
	if _, err := HashFromHex("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := HashFromHex("abcd"); err == nil {
		t.Fatal("short hex accepted")
	}
	if h.Short() != h.Hex()[:8] {
		t.Fatal("Short mismatch")
	}
}

func TestKeysDeterministic(t *testing.T) {
	k1 := GenerateKey("same-label")
	k2 := GenerateKey("same-label")
	if k1.Public() != k2.Public() {
		t.Fatal("same label produced different keys")
	}
	k3 := GenerateKey("other-label")
	if k1.Public() == k3.Public() {
		t.Fatal("different labels collided")
	}
	if GenerateKeyIndexed("x", 1).Public() == GenerateKeyIndexed("x", 2).Public() {
		t.Fatal("indexed keys collided")
	}
}

func TestSignVerify(t *testing.T) {
	k := GenerateKey("signer")
	msg := []byte("the message")
	sig := k.Sign(msg)
	if !Verify(k.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(k.Public(), []byte("other"), sig) {
		t.Fatal("wrong message accepted")
	}
	other := GenerateKey("other-signer")
	if Verify(other.Public(), msg, sig) {
		t.Fatal("wrong key accepted")
	}
	h := HashBytes(msg)
	hs := k.SignHash(h)
	if !VerifyHash(k.Public(), h, hs) {
		t.Fatal("hash signature rejected")
	}
}

func TestPubKeyOrdering(t *testing.T) {
	a := GenerateKey("a").Public()
	b := GenerateKey("b").Public()
	if a.Compare(b) == 0 || a.Compare(b) != -b.Compare(a) {
		t.Fatal("Compare not antisymmetric")
	}
	if a.Compare(a) != 0 {
		t.Fatal("Compare not reflexive")
	}
	var zero PubKey
	if !zero.IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestQuickSignatureNonMalleable(t *testing.T) {
	k := GenerateKey("quick-signer")
	f := func(msg []byte, flip uint16) bool {
		sig := k.Sign(msg)
		if !Verify(k.Public(), msg, sig) {
			return false
		}
		// Flipping any bit of the signature must invalidate it.
		bad := sig
		bit := int(flip) % (len(bad) * 8)
		bad[bit/8] ^= 1 << (bit % 8)
		return !Verify(k.Public(), msg, bad)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
