package cryptoutil

import (
	"fmt"
	"sync"
	"testing"
)

// quorumTasks builds n valid hash-signature tasks from distinct keys.
func quorumTasks(n int) []VerifyTask {
	tasks := make([]VerifyTask, n)
	payload := HashBytes([]byte("payload"))
	for i := range tasks {
		k := GenerateKeyIndexed("batch-test", i)
		tasks[i] = HashTask(k.Public(), payload, k.SignHash(payload))
	}
	return tasks
}

func corrupt(t VerifyTask) VerifyTask {
	t.Sig[0] ^= 0xff
	return t
}

func TestBatchVerifyAllTable(t *testing.T) {
	base := quorumTasks(7)
	cases := []struct {
		name    string
		mutate  func([]VerifyTask) []VerifyTask
		workers int
		want    bool
	}{
		{"empty batch", func([]VerifyTask) []VerifyTask { return nil }, 4, true},
		{"single task", func(ts []VerifyTask) []VerifyTask { return ts[:1] }, 4, true},
		{"all valid", func(ts []VerifyTask) []VerifyTask { return ts }, 4, true},
		{"all valid serial", func(ts []VerifyTask) []VerifyTask { return ts }, 1, true},
		{"wrong signer", func(ts []VerifyTask) []VerifyTask {
			out := append([]VerifyTask(nil), ts...)
			out[3].Pub = ts[4].Pub
			return out
		}, 4, false},
	}
	// One invalid signature at each position, serial and parallel.
	for pos := 0; pos < len(base); pos++ {
		pos := pos
		for _, workers := range []int{1, 4} {
			cases = append(cases, struct {
				name    string
				mutate  func([]VerifyTask) []VerifyTask
				workers int
				want    bool
			}{
				fmt.Sprintf("invalid at %d workers %d", pos, workers),
				func(ts []VerifyTask) []VerifyTask {
					out := append([]VerifyTask(nil), ts...)
					out[pos] = corrupt(out[pos])
					return out
				},
				workers, false,
			})
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewBatchVerifier(WithWorkers(tc.workers), WithCacheSize(64))
			tasks := tc.mutate(base)
			if got := v.VerifyAll(tasks); got != tc.want {
				t.Fatalf("VerifyAll = %v, want %v", got, tc.want)
			}
			// Equivalence with the sequential single-signature path.
			want := true
			for _, task := range tasks {
				if !VerifyHash(task.Pub, Hash(task.Msg), task.Sig) {
					want = false
					break
				}
			}
			if want != tc.want {
				t.Fatalf("sequential VerifyHash disagrees: %v vs %v", want, tc.want)
			}
		})
	}
}

func TestBatchVerifyEach(t *testing.T) {
	tasks := quorumTasks(6)
	tasks[1] = corrupt(tasks[1])
	tasks[4] = corrupt(tasks[4])
	v := NewBatchVerifier(WithWorkers(3), WithCacheSize(16))
	got := v.VerifyEach(tasks)
	want := []bool{true, false, true, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VerifyEach[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBatchVerifyCacheAccounting(t *testing.T) {
	tasks := quorumTasks(5)
	v := NewBatchVerifier(WithWorkers(2), WithCacheSize(16))

	if !v.VerifyAll(tasks) {
		t.Fatal("first pass should verify")
	}
	s := v.Stats()
	if s.Hits != 0 || s.Misses != 5 || s.Len != 5 {
		t.Fatalf("after cold pass: %+v", s)
	}

	if !v.VerifyAll(tasks) {
		t.Fatal("second pass should verify")
	}
	s = v.Stats()
	if s.Hits != 5 || s.Misses != 5 {
		t.Fatalf("after warm pass: %+v", s)
	}

	// Invalid signatures are never cached.
	bad := corrupt(tasks[0])
	if v.Verify(bad) {
		t.Fatal("corrupt signature verified")
	}
	if v.Verify(bad) {
		t.Fatal("corrupt signature verified on retry")
	}
	s = v.Stats()
	if s.Misses != 7 {
		t.Fatalf("invalid tasks must always miss: %+v", s)
	}
}

func TestBatchVerifyCacheBounded(t *testing.T) {
	const capacity = 8
	v := NewBatchVerifier(WithWorkers(2), WithCacheSize(capacity))
	payload := HashBytes([]byte("bounded"))
	for i := 0; i < 10*capacity; i++ {
		k := GenerateKeyIndexed("bounded", i)
		if !v.Verify(HashTask(k.Public(), payload, k.SignHash(payload))) {
			t.Fatalf("task %d failed", i)
		}
		if got := v.Stats().Len; got > capacity {
			t.Fatalf("cache grew to %d entries, cap %d", got, capacity)
		}
	}
	if got := v.Stats().Len; got != capacity {
		t.Fatalf("cache len %d, want full at %d", got, capacity)
	}

	// An evicted entry re-verifies (miss), a retained one hits.
	s0 := v.Stats()
	k := GenerateKeyIndexed("bounded", 0) // oldest, long evicted
	v.Verify(HashTask(k.Public(), payload, k.SignHash(payload)))
	if v.Stats().Misses != s0.Misses+1 {
		t.Fatal("evicted entry should re-verify")
	}
	k = GenerateKeyIndexed("bounded", 10*capacity-1) // newest, retained
	v.Verify(HashTask(k.Public(), payload, k.SignHash(payload)))
	if v.Stats().Hits != s0.Hits+1 {
		t.Fatal("retained entry should hit")
	}
}

func TestBatchVerifyConcurrentCallers(t *testing.T) {
	v := NewBatchVerifier(WithWorkers(4), WithCacheSize(32))
	valid := quorumTasks(8)
	invalid := append([]VerifyTask(nil), valid...)
	invalid[5] = corrupt(invalid[5])

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if !v.VerifyAll(valid) {
					errs <- fmt.Sprintf("goroutine %d: valid batch rejected", g)
				}
				if v.VerifyAll(invalid) {
					errs <- fmt.Sprintf("goroutine %d: invalid batch accepted", g)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	s := v.Stats()
	if s.Hits == 0 {
		t.Fatalf("concurrent warm batches should hit the cache: %+v", s)
	}
}

func BenchmarkBatchVerify24(b *testing.B) {
	tasks := quorumTasks(24)
	for _, bench := range []struct {
		name string
		v    *BatchVerifier
	}{
		{"sequential", NewBatchVerifier(WithWorkers(1), WithCacheSize(0))},
		{"batch", NewBatchVerifier(WithCacheSize(0))},
		{"cached", NewBatchVerifier()},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !bench.v.VerifyAll(tasks) {
					b.Fatal("batch rejected")
				}
			}
		})
	}
}
