// Package cryptoutil provides the hashing and signing primitives shared by
// every other module: a fixed-size Hash value, domain-separated SHA-256
// helpers, and thin Ed25519 wrappers with deterministic key generation for
// tests and simulations.
package cryptoutil

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// HashSize is the size of a Hash in bytes.
const HashSize = 32

// Hash is a 32-byte SHA-256 digest. The zero value represents "no hash" and
// is used as the empty-trie root sentinel.
type Hash [HashSize]byte

// ZeroHash is the all-zero hash, used as a sentinel for "empty".
var ZeroHash Hash

// HashBytes returns the SHA-256 digest of data.
func HashBytes(data []byte) Hash {
	return Hash(sha256.Sum256(data))
}

// HashConcat returns the SHA-256 digest of the concatenation of the given
// byte slices without materialising the concatenation.
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// HashTagged returns a domain-separated digest: SHA-256(tag || parts...).
// Using distinct single-byte tags for distinct node kinds prevents
// cross-kind preimage confusion in Merkle structures.
func HashTagged(tag byte, parts ...[]byte) Hash {
	h := sha256.New()
	h.Write([]byte{tag})
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// HashUint64 hashes a uint64 in big-endian order together with a tag.
func HashUint64(tag byte, v uint64) Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return HashTagged(tag, buf[:])
}

// IsZero reports whether h is the all-zero sentinel.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Bytes returns the hash as a byte slice. The returned slice is a copy.
func (h Hash) Bytes() []byte {
	out := make([]byte, HashSize)
	copy(out, h[:])
	return out
}

// Hex returns the lowercase hexadecimal encoding of the hash.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 hex characters, handy for logs.
func (h Hash) Short() string { return h.Hex()[:8] }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// HashFromHex parses a 64-character hex string into a Hash.
func HashFromHex(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("cryptoutil: invalid hex hash: %w", err)
	}
	if len(b) != HashSize {
		return h, fmt.Errorf("cryptoutil: hash must be %d bytes, got %d", HashSize, len(b))
	}
	copy(h[:], b)
	return h, nil
}
