GO ?= go

.PHONY: all build vet lint lint-deprecated test race bench bench-json mesh-smoke recover-smoke route-smoke cover verify-figs api-check api-update ci

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint runs staticcheck when it is installed, and falls back to go vet
# otherwise so the target works offline and in minimal containers.
lint: lint-deprecated
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Grep gate for retired APIs. The deprecated O(n) Clone() snapshot shims
# and the error aliases ErrInvalidProof / ErrDuplicatePacket were deleted
# in PR 7; this gate keeps them from creeping back in any file. Use the
# O(1) Snapshot/Commit + At + Release versioning API and the canonical
# ErrProofVerification / ErrPacketAlreadyDelivered names.
lint-deprecated:
	@bad=$$(grep -rn '\.Clone()\|ErrInvalidProof\|ErrDuplicatePacket' --include='*.go' .); \
	if [ -n "$$bad" ]; then \
		echo "retired API call sites (Clone() -> Snapshot/At/Release; use ErrProofVerification / ErrPacketAlreadyDelivered):"; \
		echo "$$bad"; exit 1; \
	fi

# Tier-1 gate: everything must compile, vet clean, pass the test suite, and
# the concurrency-heavy packages must be race-clean — telemetry (shared
# mutable state everywhere) plus relayer and core now that the relayer
# runs per-channel shards on the scheduler. Full -race stays in `make ci`.
test: build vet
	$(GO) test ./...
	$(GO) test -race ./internal/telemetry/... ./internal/relayer/... ./internal/core/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Regenerate the machine-checkable benchmark trajectory: a pinned open-loop
# load run (p50/p99 packet latency, sustained pkt/s) plus allocs/op of the
# hottest micro-benchmarks with their recorded pre-optimisation baselines.
# The self-check fails the target when the output is schema-invalid.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr10.json
	$(GO) run ./cmd/benchjson -check BENCH_pr10.json

# Mesh smoke gate: both acceptance topologies (4-chain line and diamond)
# under per-link chaos must deliver every routed transfer with exact
# escrow/voucher conservation at every hop. guestsim exits non-zero on a
# conservation violation, so this is a pass/fail gate, not a demo.
mesh-smoke:
	$(GO) run ./cmd/guestsim -mesh -mesh-topology line >/dev/null
	$(GO) run ./cmd/guestsim -mesh -mesh-topology diamond >/dev/null
	@echo "mesh smoke: line + diamond conserve under chaos"

# Kill-and-recover smoke gate: a disk-backed guest is power-cut mid-stall
# (WAL truncated to the last fsync), reopened cold, and must recover
# exactly the last finalised root with byte-identical historical proofs.
# guestsim exits non-zero when either verdict fails.
recover-smoke:
	$(GO) run ./cmd/guestsim -recover >/dev/null
	@echo "recover smoke: power cut recovers the last finalised root"

# Adaptive-routing smoke gate: the degraded diamond must migrate >= 90%
# of post-grace flows to the healthy arm, beat the same-seed static
# control's post-degradation p99, conserve escrow at every hop under
# rerouting, and the competing-relayer race must deliver exactly once
# with conserved fee totals. guestsim exits non-zero on any violation.
route-smoke:
	$(GO) run ./cmd/guestsim -adaptive-routing >/dev/null
	@echo "route smoke: adaptive plane migrates, conserves, races exactly-once"

# Coverage across every package, with the combined profile left in
# cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# Regenerate the reference figures and fail on any drift: the default
# single-channel topology must reproduce bench_figs_28d.txt byte for byte.
verify-figs:
	$(GO) run ./cmd/benchfigs 2>/dev/null > bench_figs_28d.txt.new
	@if ! diff -u bench_figs_28d.txt bench_figs_28d.txt.new; then \
		echo "figure drift: bench_figs_28d.txt no longer reproduces"; \
		rm -f bench_figs_28d.txt.new; exit 1; \
	fi
	@rm -f bench_figs_28d.txt.new
	@echo "bench_figs_28d.txt reproduces byte-identically"

# API-stability gate: the exported surface of the packet-pipeline and
# persistence packages (internal/ibc, internal/middleware,
# internal/routing, internal/nodestore) must match the committed
# api/ibc.txt. Regenerate deliberately with `make api-update` when an API
# change is intended.
api-check:
	@$(GO) run ./cmd/apidump internal/ibc internal/middleware internal/routing internal/nodestore > api/ibc.txt.new
	@if ! diff -u api/ibc.txt api/ibc.txt.new; then \
		echo "exported API drift: run 'make api-update' if the change is intended"; \
		rm -f api/ibc.txt.new; exit 1; \
	fi
	@rm -f api/ibc.txt.new
	@echo "exported API surface matches api/ibc.txt"

api-update:
	$(GO) run ./cmd/apidump internal/ibc internal/middleware internal/routing internal/nodestore > api/ibc.txt

# The pre-merge gate: vet + lint (including the retired-API grep), the
# whole suite under the race detector, the coverage summary, the
# figure-drift check, the exported-API stability check, and the mesh,
# kill-and-recover, and adaptive-routing smoke runs.
ci: vet lint race cover verify-figs api-check mesh-smoke recover-smoke route-smoke
