GO ?= go

.PHONY: all build vet test race bench

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: everything must compile, vet clean, and pass the test suite.
test: build vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
