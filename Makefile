GO ?= go

.PHONY: all build vet lint test race bench

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint runs staticcheck when it is installed, and falls back to go vet
# otherwise so the target works offline and in minimal containers.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Tier-1 gate: everything must compile, vet clean, pass the test suite, and
# the telemetry package (shared mutable state everywhere) must be race-clean.
test: build vet
	$(GO) test ./...
	$(GO) test -race ./internal/telemetry/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
