GO ?= go

.PHONY: all build vet lint lint-deprecated test race bench cover ci

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint runs staticcheck when it is installed, and falls back to go vet
# otherwise so the target works offline and in minimal containers.
lint: lint-deprecated
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Grep gate for the deprecated O(n) snapshot API: Clone() may appear only in
# its definitions (trie.go, store.go) and the quarantined
# *clone_deprecated_test.go coverage; everything else must use the O(1)
# Snapshot/Commit + At + Release versioning API from PR 3.
lint-deprecated:
	@bad=$$(grep -rn '\.Clone()' --include='*.go' . \
		| grep -v 'clone_deprecated' \
		| grep -v 'internal/trie/trie\.go' \
		| grep -v 'internal/ibc/store\.go'); \
	if [ -n "$$bad" ]; then \
		echo "deprecated Clone() call sites (use Snapshot/At/Release):"; \
		echo "$$bad"; exit 1; \
	fi

# Tier-1 gate: everything must compile, vet clean, pass the test suite, and
# the telemetry package (shared mutable state everywhere) must be race-clean.
test: build vet
	$(GO) test ./...
	$(GO) test -race ./internal/telemetry/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Coverage across every package, with the combined profile left in
# cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# The pre-merge gate: vet + lint (including the deprecated-API grep), the
# whole suite under the race detector, and the coverage summary.
ci: vet lint race cover
