// Package repro is a from-scratch Go reproduction of "Be My Guest:
// Welcoming Interoperability into IBC-Incompatible Blockchains"
// (DSN 2025): the guest blockchain — a virtual IBC-capable blockchain
// implemented inside a smart contract on a host chain that lacks provable
// storage, light clients, and introspection.
//
// The library lives under internal/: the sealable Merkle trie (trie), the
// Solana-like host simulator (host), the chain-agnostic IBC core (ibc),
// the Guest Contract (guest), light clients (lightclient/...), the
// Cosmos-like counterparty (counterparty), the off-chain daemons
// (validator, relayer, fisherman), and the evaluation harness
// (experiments). Package core wires a full deployment; see the runnable
// programs in examples/ and cmd/.
package repro
