// Fisherman: a byzantine validator forges signatures for blocks that were
// never produced by the Guest Contract; a permissionless fisherman spots
// the signatures in gossip, submits evidence, and the contract slashes the
// offender's stake (§III-C). All three offence classes are demonstrated:
// signing a fork of an existing height, signing a future height, and
// double-signing one height.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/counterparty"
	"repro/internal/cryptoutil"
	"repro/internal/fees"
	"repro/internal/fisherman"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/validator"
)

func main() {
	fleet := make([]validator.Behaviour, 10)
	for i := range fleet {
		fleet[i] = validator.Behaviour{
			Active:  true,
			Latency: sim.Uniform{Min: 500 * time.Millisecond, Max: 2 * time.Second},
			Policy:  fees.Policy{Name: "fixed", PriorityFee: 5_000},
		}
	}
	cp := counterparty.DefaultConfig()
	cp.NumValidators = 15
	net, err := core.NewNetwork(core.Config{Behaviours: fleet, CP: cp, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Produce some chain activity so there are canonical blocks.
	alice := net.NewUser("alice", 10*host.LamportsPerSOL, "GUEST", 100)
	if _, err := net.SendTransferFromGuest(alice, "bob", "GUEST", 10, "", fees.PriorityPolicy, 0); err != nil {
		log.Fatal(err)
	}
	net.Run(time.Minute)

	st, err := net.GuestState()
	if err != nil {
		log.Fatal(err)
	}
	byz := net.Validators[7] // the offender
	fmt.Printf("guest height: %d; byzantine validator: %s\n", st.Height(), byz.Key.Public().Short())
	fmt.Printf("stake before: %.1f SOL, slashed=%v\n\n",
		float64(st.Candidates[byz.Key.Public()].Stake)/float64(host.LamportsPerSOL),
		st.Slashed[byz.Key.Public()])

	// Offence 3: sign a block that differs from the canonical block at an
	// existing height.
	forged := cryptoutil.HashBytes([]byte("a fork that never happened"))
	sig := byz.PublishForgedSignature(2, forged)
	net.Gossip.Publish(fisherman.Observation{
		Height: 2, BlockHash: forged, PubKey: sig.PubKey, Signature: sig.Signature,
	})
	fmt.Println("byzantine validator gossips a signature for a forged block at height 2...")

	net.Run(time.Minute)
	st, _ = net.GuestState()
	fmt.Printf("fisherman submissions: %d\n", net.Fishermen[0].Submitted)
	fmt.Printf("slashed=%v, candidate removed=%v, slashed pot: %.1f SOL\n\n",
		st.Slashed[byz.Key.Public()],
		st.Candidates[byz.Key.Public()] == nil,
		float64(st.SlashedPot)/float64(host.LamportsPerSOL))

	// Offence 2: another validator signs a far-future height.
	byz2 := net.Validators[8]
	future := cryptoutil.HashBytes([]byte("block from the future"))
	sig2 := byz2.PublishForgedSignature(9_999, future)
	net.Gossip.Publish(fisherman.Observation{
		Height: 9_999, BlockHash: future, PubKey: sig2.PubKey, Signature: sig2.Signature,
	})
	fmt.Println("second validator gossips a signature for height 9999 (far beyond head)...")
	net.Run(time.Minute)
	st, _ = net.GuestState()
	fmt.Printf("slashed=%v (offence: future height)\n\n", st.Slashed[byz2.Key.Public()])

	// Offence 1: double-signing a height that is not yet on chain.
	byz3 := net.Validators[9]
	h := st.Height() + 1
	a := cryptoutil.HashBytes([]byte("candidate block A"))
	b := cryptoutil.HashBytes([]byte("candidate block B"))
	sa := byz3.PublishForgedSignature(h, a)
	sb := byz3.PublishForgedSignature(h, b)
	net.Gossip.Publish(fisherman.Observation{Height: h, BlockHash: a, PubKey: sa.PubKey, Signature: sa.Signature})
	net.Gossip.Publish(fisherman.Observation{Height: h, BlockHash: b, PubKey: sb.PubKey, Signature: sb.Signature})
	fmt.Printf("third validator double-signs height %d...\n", h)
	net.Run(time.Minute)
	st, _ = net.GuestState()
	fmt.Printf("slashed=%v (offence: double sign)\n\n", st.Slashed[byz3.Key.Public()])

	// The fisherman is rewarded with half of each confiscated stake.
	fmt.Printf("fisherman balance: %.1f SOL (rewards for %d reports)\n",
		float64(net.Host.Balance(net.Fishermen[0].Key().Public()))/float64(host.LamportsPerSOL),
		net.Fishermen[0].Submitted)

	// The chain keeps finalising without the slashed validators: the
	// remaining 7 of 10 equal stakes still exceed the 2/3 quorum.
	if _, err := net.SendTransferFromGuest(alice, "bob", "GUEST", 5, "", fees.PriorityPolicy, 0); err != nil {
		log.Fatal(err)
	}
	before := st.Height()
	net.Run(time.Minute)
	st, _ = net.GuestState()
	fmt.Printf("chain still live: height %d -> %d, head finalised=%v\n", before, st.Height(), st.Head().Finalised)
}
