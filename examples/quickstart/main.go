// Quickstart: boot a complete guest-blockchain deployment — simulated
// Solana-like host, Guest Contract, validators, relayer, and a Cosmos-like
// counterparty — open an IBC connection and channel, and send one packet
// in each direction.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/counterparty"
	"repro/internal/fees"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/validator"
)

func main() {
	// A small, fast validator fleet (the full Table I fleet lives in
	// core.DeploymentBehaviours).
	fleet := make([]validator.Behaviour, 5)
	for i := range fleet {
		fleet[i] = validator.Behaviour{
			Active:  true,
			Latency: sim.Uniform{Min: 500 * time.Millisecond, Max: 3 * time.Second},
			Policy:  fees.Policy{Name: "fixed", PriorityFee: 10_000},
		}
	}
	cp := counterparty.DefaultConfig()
	cp.NumValidators = 20

	net, err := core.NewNetwork(core.Config{
		Behaviours: fleet,
		CP:         cp,
		Seed:       2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment ready:")
	fmt.Printf("  guest connection %s <-> counterparty connection %s\n",
		net.Boot.GuestConnection, net.Boot.CPConnection)
	fmt.Printf("  guest channel %s <-> counterparty channel %s\n",
		net.Boot.GuestChannel, net.Boot.CPChannel)
	fmt.Printf("  10 MiB state account deposit: $%.0f (recoverable)\n\n", fees.USD(net.Deposit))

	// Guest -> counterparty.
	alice := net.NewUser("alice", 10*host.LamportsPerSOL, "GUEST", 1000)
	if _, err := net.SendTransferFromGuest(alice, "bob", "GUEST", 400, "hello from the guest chain", fees.PriorityPolicy, 0); err != nil {
		log.Fatal(err)
	}
	net.Run(90 * time.Second)
	voucher := "transfer/" + string(net.Boot.CPChannel) + "/GUEST"
	fmt.Printf("after 90s: bob's voucher balance on the counterparty: %d %s\n",
		net.CPApp.Balance("bob", voucher), voucher)

	// Counterparty -> guest.
	net.CPApp.Mint("carol", "PICA", 500)
	if _, err := net.SendTransferFromCP("carol", "dave", "PICA", 200, "hello from the counterparty", 0); err != nil {
		log.Fatal(err)
	}
	net.Run(4 * time.Minute)
	guestVoucher := "transfer/" + string(net.Boot.GuestChannel) + "/PICA"
	fmt.Printf("after 4m: dave's voucher balance on the guest chain: %d %s\n",
		net.GuestApp.Balance("dave", guestVoucher), guestVoucher)

	st, err := net.GuestState()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nguest chain: height %d, %d live trie nodes, root %s\n",
		st.Height(), st.StorageNodeCount(), st.Store.Root().Short())
	if len(net.Relayer.Updates) > 0 {
		u := net.Relayer.Updates[0]
		fmt.Printf("first light-client update: %d host txs, %d bytes, %d signatures, cost %.1f¢\n",
			u.Txs, u.Bytes, u.Sigs, fees.Cents(u.Cost))
	}
}
