// Hostprofiles: §VI-D in action — the identical Guest Contract deployed on
// three different host profiles. On the Solana profile (1232-byte
// transactions, 1.4M compute units) a light-client update needs dozens of
// chunked transactions; on NEAR-like and TRON-like profiles the same
// update fits in two. The application code does not change at all.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/counterparty"
	"repro/internal/fees"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/validator"
)

func main() {
	profiles := []host.Profile{
		host.SolanaProfile(),
		host.NEARLikeProfile(),
		host.TRONLikeProfile(),
	}
	fmt.Printf("%-10s %10s %12s %14s %12s %14s\n",
		"host", "slot", "max tx (B)", "txs/update", "txs/recv", "send->recv")
	for _, p := range profiles {
		run(p)
	}
	fmt.Println("\nThe guest blockchain adapts to its host automatically: the chunked-upload")
	fmt.Println("machinery only engages where the transaction size limit demands it (§IV, §VI-D).")
}

func run(profile host.Profile) {
	fleet := make([]validator.Behaviour, 4)
	for i := range fleet {
		fleet[i] = validator.Behaviour{
			Active:  true,
			Latency: sim.Uniform{Min: 500 * time.Millisecond, Max: 2 * time.Second},
			Policy:  fees.Policy{Name: "fixed", PriorityFee: 1_000},
		}
	}
	cp := counterparty.DefaultConfig()
	cp.NumValidators = 60
	cp.BlockInterval = 3 * time.Second
	net, err := core.NewNetwork(core.Config{
		Behaviours:  fleet,
		CP:          cp,
		HostProfile: profile,
		Seed:        77,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One inbound transfer exercises the client update + receive flow;
	// step the clock until the voucher lands to measure delivery time.
	net.CPApp.Mint("sender", "PICA", 1000)
	start := net.Sched.Now()
	if _, err := net.SendTransferFromCP("sender", "receiver", "PICA", 42, "cross-profile hello", 0); err != nil {
		log.Fatal(err)
	}
	voucher := "transfer/" + string(net.Boot.GuestChannel) + "/PICA"
	deadline := 10 * time.Minute
	for net.GuestApp.Balance("receiver", voucher) != 42 {
		if net.Sched.Now().Sub(start) > deadline {
			log.Fatalf("profile %s: transfer not delivered within %v", profile.Name, deadline)
		}
		net.Run(time.Second)
	}
	delivered := net.Sched.Now().Sub(start).Round(time.Second)
	net.Run(10 * time.Second) // let the relayer's bookkeeping callbacks fire

	var updateTxs, recvTxs float64
	if len(net.Relayer.Updates) > 0 {
		updateTxs = float64(net.Relayer.Updates[0].Txs)
	}
	if len(net.Relayer.Recvs) > 0 {
		recvTxs = float64(net.Relayer.Recvs[0].Txs)
	}
	fmt.Printf("%-10s %10s %12d %14.0f %12.0f %14s\n",
		profile.Name, profile.SlotDuration, profile.MaxTransactionSize,
		updateTxs, recvTxs, delivered)
}
