// Tokentransfer: a fuller ICS-20 scenario on the guest blockchain —
// multiple users transferring in both directions, a voucher round trip
// that un-escrows rather than re-mints, and a packet that times out and
// refunds the sender.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/counterparty"
	"repro/internal/fees"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/validator"
)

func main() {
	fleet := make([]validator.Behaviour, 6)
	for i := range fleet {
		fleet[i] = validator.Behaviour{
			Active:  true,
			Latency: sim.LogNormal{Mu: 0.9, Sigma: 0.5, Shift: 400 * time.Millisecond},
			Policy:  fees.Policy{Name: "fixed", PriorityFee: 25_000},
		}
	}
	cp := counterparty.DefaultConfig()
	cp.NumValidators = 30
	net, err := core.NewNetwork(core.Config{Behaviours: fleet, CP: cp, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	alice := net.NewUser("alice", 10*host.LamportsPerSOL, "SOLG", 10_000)
	erin := net.NewUser("erin", 10*host.LamportsPerSOL, "SOLG", 2_000)
	net.CPApp.Mint("bob", "PICA", 5_000)

	fmt.Println("== outbound transfers (guest -> counterparty) ==")
	if _, err := net.SendTransferFromGuest(alice, "bob", "SOLG", 1_500, "", fees.BundlePolicy, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := net.SendTransferFromGuest(erin, "frank", "SOLG", 700, "", fees.PriorityPolicy, 0); err != nil {
		log.Fatal(err)
	}
	net.Run(2 * time.Minute)
	voucher := "transfer/" + string(net.Boot.CPChannel) + "/SOLG"
	fmt.Printf("bob:   %5d %s\n", net.CPApp.Balance("bob", voucher), voucher)
	fmt.Printf("frank: %5d %s\n", net.CPApp.Balance("frank", voucher), voucher)
	fmt.Printf("escrowed on guest: %d SOLG\n\n", net.GuestApp.EscrowedAmount(net.Boot.GuestChannel, "SOLG"))

	fmt.Println("== voucher round trip (returns home, un-escrows) ==")
	if _, err := net.SendTransferFromCP("bob", alice.Key.Public().String(), voucher, 500, "", 0); err != nil {
		log.Fatal(err)
	}
	net.Run(4 * time.Minute)
	fmt.Printf("alice SOLG after return: %d (started 10000, sent 1500, got 500 back)\n",
		net.GuestApp.Balance(alice.Key.Public().String(), "SOLG"))
	fmt.Printf("escrow after return: %d SOLG\n\n", net.GuestApp.EscrowedAmount(net.Boot.GuestChannel, "SOLG"))

	fmt.Println("== native counterparty token to the guest ==")
	if _, err := net.SendTransferFromCP("bob", "grace", "PICA", 1_000, "", 0); err != nil {
		log.Fatal(err)
	}
	net.Run(4 * time.Minute)
	guestVoucher := "transfer/" + string(net.Boot.GuestChannel) + "/PICA"
	fmt.Printf("grace on guest: %d %s\n\n", net.GuestApp.Balance("grace", guestVoucher), guestVoucher)

	fmt.Println("== timeout and refund ==")
	// A 1-second timeout cannot possibly be delivered (finalisation alone
	// takes several seconds); the relayer proves non-delivery and the
	// transfer app refunds the escrow.
	if _, err := net.SendTransferFromGuest(erin, "nobody", "SOLG", 999, "", fees.PriorityPolicy, 1*time.Second); err != nil {
		log.Fatal(err)
	}
	before := net.GuestApp.Balance(erin.Key.Public().String(), "SOLG")
	net.Run(6 * time.Minute)
	after := net.GuestApp.Balance(erin.Key.Public().String(), "SOLG")
	fmt.Printf("erin before refund: %d, after: %d (999 refunded: %v)\n", before, after, after == before+999)
	fmt.Printf("timeouts proven by relayer: %d\n", net.Relayer.TimeoutsRun)
}
