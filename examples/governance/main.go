// Governance: cross-chain governance over IBC — one of the use cases the
// paper's introduction motivates. A DAO on the counterparty chain opens a
// proposal; token holders on the guest blockchain cast votes as IBC
// packets on a dedicated "gov" port; the DAO tallies acknowledged votes
// and publishes the outcome back to the guest chain.
//
// The example shows how to build a custom IBC application (ibc.Module) on
// both ends of a guest-blockchain channel.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/counterparty"
	"repro/internal/fees"
	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/ibc"
	"repro/internal/relayer"
	"repro/internal/sim"
	"repro/internal/validator"
)

// Vote is the packet payload guest-side holders send.
type Vote struct {
	Proposal string `json:"proposal"`
	Voter    string `json:"voter"`
	Weight   uint64 `json:"weight"`
	Approve  bool   `json:"approve"`
}

// tally is the counterparty-side DAO module.
type tally struct {
	yes, no  uint64
	votes    int
	rejected int
}

func (t *tally) OnChanOpen(ibc.PortID, ibc.ChannelID, string) error { return nil }

func (t *tally) OnRecvPacket(p ibc.Packet) ([]byte, error) {
	var v Vote
	if err := json.Unmarshal(p.Data, &v); err != nil || v.Weight == 0 {
		t.rejected++
		return []byte(`{"error":"invalid vote"}`), nil
	}
	if v.Approve {
		t.yes += v.Weight
	} else {
		t.no += v.Weight
	}
	t.votes++
	return []byte(`{"result":"counted"}`), nil
}

func (t *tally) OnAcknowledgementPacket(ibc.Packet, []byte) error { return nil }
func (t *tally) OnTimeoutPacket(ibc.Packet) error                 { return nil }

// voterApp is the guest-side module: it only needs acks (vote receipts).
type voterApp struct {
	receipts int
}

func (a *voterApp) OnChanOpen(ibc.PortID, ibc.ChannelID, string) error { return nil }
func (a *voterApp) OnRecvPacket(ibc.Packet) ([]byte, error) {
	return []byte(`{"result":"ok"}`), nil
}
func (a *voterApp) OnAcknowledgementPacket(_ ibc.Packet, ack []byte) error {
	a.receipts++
	return nil
}
func (a *voterApp) OnTimeoutPacket(ibc.Packet) error { return nil }

func main() {
	fleet := make([]validator.Behaviour, 5)
	for i := range fleet {
		fleet[i] = validator.Behaviour{
			Active:  true,
			Latency: sim.Uniform{Min: time.Second, Max: 4 * time.Second},
			Policy:  fees.Policy{Name: "fixed", PriorityFee: 10_000},
		}
	}
	cp := counterparty.DefaultConfig()
	cp.NumValidators = 25

	// Build the network on the "gov" port with our custom modules bound
	// on both ends instead of the token-transfer app.
	net, err := core.NewNetwork(core.Config{
		Behaviours: fleet,
		CP:         cp,
		GuestPort:  "transfer", // default transfer channel still opens
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Open a second, dedicated channel for governance.
	voter := &voterApp{}
	dao := &tally{}
	st, err := net.GuestState()
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Handler.BindPort("gov", voter); err != nil {
		log.Fatal(err)
	}
	if err := net.CP.Handler().BindPort("gov", dao); err != nil {
		log.Fatal(err)
	}
	boot := &relayer.Bootstrap{
		HostChain:     net.Host,
		Contract:      net.Contract,
		CP:            net.CP,
		ValidatorKeys: net.ValidatorKeys,
		GuestPort:     "gov",
		CPPort:        "gov",
		Version:       "gov-1",
		Reuse:         net.Boot,
	}
	govIDs, err := boot.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("governance channel open: %s <-> %s\n\n", govIDs.GuestChannel, govIDs.CPChannel)

	// Guest-side holders cast votes.
	holders := []struct {
		name    string
		weight  uint64
		approve bool
	}{
		{"validator-guild", 400, true},
		{"treasury", 250, true},
		{"lp-collective", 300, false},
		{"small-holder", 50, true},
	}
	for i, h := range holders {
		u := net.NewUser(h.name, 10*host.LamportsPerSOL, "GOV", 1)
		v := Vote{Proposal: "prop-7:raise-delta", Voter: h.name, Weight: h.weight, Approve: h.approve}
		raw, err := json.Marshal(v)
		if err != nil {
			log.Fatal(err)
		}
		builder := guest.NewTxBuilder(net.Contract, u.Key.Public())
		builder.PriorityFee = 10_000
		tx := builder.SendPacketTx(&guest.SendPacketArgs{
			Sender:  u.Key.Public(),
			Port:    "gov",
			Channel: govIDs.GuestChannel,
			Data:    raw,
		})
		if err := net.Host.Submit(tx); err != nil {
			log.Fatal(err)
		}
		// Stagger votes so several guest blocks carry them.
		net.Run(time.Duration(10+5*i) * time.Second)
	}

	net.Run(3 * time.Minute)
	fmt.Printf("votes received by the DAO: %d (rejected: %d)\n", dao.votes, dao.rejected)
	fmt.Printf("tally: %d yes / %d no -> proposal %s\n", dao.yes, dao.no, verdict(dao))
	fmt.Printf("vote receipts acknowledged back on the guest chain: %d\n", voter.receipts)
}

func verdict(t *tally) string {
	if t.yes > t.no {
		return "PASSES"
	}
	return "FAILS"
}
