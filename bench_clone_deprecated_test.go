package repro

// The deprecated deep-copy snapshot baseline, quarantined here so the
// `make lint` grep gate can reject Clone() calls anywhere else. Run next to
// BenchmarkSnapshotPerBlock to see the O(1)-vs-O(n) gap: the deep copy
// grows linearly with the number of live pairs.

import (
	"fmt"
	"testing"

	"repro/internal/ibc"
)

func BenchmarkSnapshotPerBlockClone(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 50_000} {
		store := ibc.NewStore()
		paths := make([]string, size)
		for i := 0; i < size; i++ {
			paths[i] = fmt.Sprintf("bench/pair/%d", i)
			if err := store.Set(paths[i], []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("clone/pairs=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := store.Clone()
				if _, _, err := snap.ProveMembership(paths[i%size]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
